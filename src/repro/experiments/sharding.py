"""Distributed sweep sharding over the cell manifest.

PR 3 made a sweep's cell list a serialisable document
(:func:`repro.experiments.results.cell_manifest`) precisely so a
sweep could outgrow one host.  This module is that seam made real:

- :class:`ShardPlan` deterministically slices a manifest into N
  balanced shards.  Balancing is cost-aware (a cell's cost is its
  scenario's task count — the dominant wall-clock driver) via
  longest-processing-time-first greedy assignment with stable
  tie-breaks, so every participant that holds the same manifest and N
  computes the *same* plan with no coordination.
- :func:`run_shard` executes exactly one shard's slice — reusing
  :meth:`repro.experiments.parallel.ParallelRunner.iter_cells` (warm
  pools, streaming, serial fallback) with the global cell indices the
  manifest assigns — and packages the results as a self-describing
  *partial artifact*: the manifest (plus its digest), the shard's
  identity, per-cell results with full-precision metric bundles, and
  wall-clock/cache telemetry.
- :func:`merge_partials` folds any set of partial artifacts —
  arriving in any order — back into a
  :class:`~repro.experiments.results.SweepResults`.  Partials from
  different manifests (detected by digest), overlapping cells and
  gaps are rejected loudly.  Because every cell's metric bundle
  round-trips exactly and the accumulator is completion-order
  independent, the merged matrix — and the JSON/CSV export bytes
  built from it — is **bit-identical** to the same sweep run
  unsharded on one host (``scripts/ci.sh`` diffs exactly that, and
  ``tests/test_sharding.py`` property-checks it over random specs
  and shard counts).

The cross-machine recipe::

    # on every host (same scenarios, same overrides):
    python -m repro.cli sweep --scenarios ... --shard I/N --out DIR

    # anywhere, after collecting the partial files:
    python -m repro.cli merge DIR... --out MERGED

"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.experiments.results import (
    CellFailure,
    SweepResults,
    cell_from_dict,
    cell_manifest,
    cell_to_dict,
    failure_from_dict,
    failure_to_dict,
)
from repro.scenarios import ScenarioSpec

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_NAME",
    "CellJournal",
    "PARTIAL_FORMAT",
    "ShardPlan",
    "manifest_digest",
    "manifest_specs",
    "merge_partials",
    "partial_from_json",
    "partial_to_json",
    "run_shard",
]

#: Format tag of shard partial artifacts.
PARTIAL_FORMAT = "repro-sweep-partial/1"

#: Format tag of the per-cell checkpoint journal.
JOURNAL_FORMAT = "repro-sweep-journal/1"

#: File name of the journal inside a sweep export directory.
JOURNAL_NAME = "cells.jsonl"


def _shard_label(index: int, count: int) -> str:
    """Human shard notation (1-based, as the CLI's ``--shard I/N``)."""
    return f"{index + 1}/{count}"


def manifest_digest(manifest: dict) -> str:
    """Deterministic digest of a cell manifest.

    SHA-256 over the canonical (sorted-keys, compact) JSON rendering,
    so two manifests digest equal iff they describe the same sweep —
    same specs (every knob), same policies, same cell flattening.
    The merge path refuses to mix partials with different digests.
    """
    canonical = json.dumps(
        manifest, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def manifest_specs(manifest: dict) -> List[ScenarioSpec]:
    """Rebuild (and validate) the scenario specs of a manifest.

    The specs are reconstructed via :meth:`ScenarioSpec.from_dict`,
    then the manifest is *regenerated* from them and compared against
    the input — a full round-trip check that catches hand-edited,
    truncated or internally inconsistent manifests (e.g. a ``cells``
    list that no longer matches the spec-derived flattening) before
    any simulation time is spent.
    """
    try:
        specs = [
            ScenarioSpec.from_dict(entry["spec"])
            for entry in manifest["scenarios"]
        ]
        policies = list(manifest["policies"])
    except KeyError as exc:
        raise ValueError(
            f"not a cell manifest (missing {exc.args[0]!r})"
        ) from None
    except TypeError as exc:
        raise ValueError(
            f"not a cell manifest (malformed structure: {exc})"
        ) from None
    regenerated = cell_manifest(specs, policies)
    if regenerated != manifest:
        raise ValueError(
            "manifest does not round-trip through its own specs "
            "(hand-edited or corrupt? regenerate it with "
            "repro.experiments.results.cell_manifest)"
        )
    return specs


def _cell_costs(manifest: dict) -> List[int]:
    """Per-cell cost estimates, indexed by global cell index.

    A cell's wall time scales with its scenario's task count (every
    task is generated, scheduled and retired), so ``num_tasks`` is the
    balancing weight; policies and seeds of the same scenario weigh
    the same.
    """
    num_tasks = [
        entry["spec"]["num_tasks"] for entry in manifest["scenarios"]
    ]
    return [num_tasks[cell["spec_index"]] for cell in manifest["cells"]]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic slicing of one manifest into N shards.

    Attributes:
        num_shards: Shard count the plan was computed for.
        digest: The manifest's :func:`manifest_digest`.
        assignments: Per shard, the ascending global cell indices it
            owns.  Every cell appears in exactly one shard.
        costs: Per shard, the summed cell cost (task count) — the
            balance the plan optimised.
    """

    num_shards: int
    digest: str
    assignments: Tuple[Tuple[int, ...], ...]
    costs: Tuple[int, ...]

    @classmethod
    def from_manifest(cls, manifest: dict, num_shards: int) -> "ShardPlan":
        """Compute the balanced plan for ``manifest`` cut N ways.

        Longest-processing-time-first greedy: cells are taken in
        descending cost order (ties broken by ascending global index)
        and each goes to the currently lightest shard (ties broken by
        ascending shard index).  Purely a function of (manifest, N):
        any host computes the identical plan, so shards can be
        launched independently with no coordinator.

        Shard counts larger than the cell count are allowed — the
        surplus shards are empty (and merge as no-ops), so a fixed
        fleet size need not know the sweep size.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        costs = _cell_costs(manifest)
        order = sorted(
            range(len(costs)), key=lambda i: (-costs[i], i)
        )
        loads = [0] * num_shards
        members: List[List[int]] = [[] for _ in range(num_shards)]
        for index in order:
            shard = min(range(num_shards), key=lambda s: (loads[s], s))
            loads[shard] += costs[index]
            members[shard].append(index)
        return cls(
            num_shards=num_shards,
            digest=manifest_digest(manifest),
            assignments=tuple(
                tuple(sorted(m)) for m in members
            ),
            costs=tuple(loads),
        )

    def shard(self, index: int) -> Tuple[int, ...]:
        """The ascending global cell indices of one shard."""
        if not 0 <= index < self.num_shards:
            raise ValueError(
                f"shard index {index} outside 0..{self.num_shards - 1}"
            )
        return self.assignments[index]


def run_shard(
    manifest: dict,
    shard_index: int,
    num_shards: int,
    policies: Optional[Dict[str, object]] = None,
    soc: Optional[SoCConfig] = None,
    workers: int = 1,
    runner=None,
    supervision=None,
) -> dict:
    """Execute one shard of a manifest and return its partial artifact.

    Rebuilds the specs from the manifest (validated round-trip),
    computes the :class:`ShardPlan`, and runs only this shard's cells
    through a :class:`~repro.experiments.parallel.ParallelRunner`
    (``runner`` reuses a caller's warm pool; otherwise one is built
    with ``workers``).  The returned document is self-describing —
    it embeds the manifest, its digest, the shard identity and every
    cell result — so :func:`merge_partials` needs nothing else.

    Args:
        manifest: The sweep's cell manifest (shared by all shards).
        shard_index: Which shard to run, ``0 <= shard_index <
            num_shards``.
        num_shards: Total shard count of the plan.
        policies: Policy factories by name; defaults to the paper's
            four.  Must cover every policy the manifest names.
        soc: SoC configuration (default reference SoC).
        workers: Worker processes for this shard's cells (ignored
            when ``runner`` is given).
        runner: Optional pre-built/pre-warmed ``ParallelRunner``.
        supervision: Optional
            :class:`~repro.experiments.parallel.Supervision` —
            routes the shard through
            :meth:`~repro.experiments.parallel.ParallelRunner.
            run_supervised`, so a poison cell quarantines into the
            partial's ``failures`` list (exit-code 3 at the CLI)
            instead of aborting the shard.  Without it the shard runs
            the plain streaming path and any cell error aborts.
    """
    from repro.config import DEFAULT_SOC
    # Imported lazily: the execution package imports this module for
    # the plan/cost/journal machinery, so the dependency must point
    # one way at import time.
    from repro.experiments.execution.leases import WorkLedger
    from repro.experiments.execution.worker import execute_lease
    from repro.experiments.parallel import ParallelRunner
    from repro.experiments.runner import default_policies

    if soc is None:
        soc = DEFAULT_SOC
    specs = manifest_specs(manifest)
    # Static sharding is the degenerate case of the work ledger:
    # every host pre-leases its own deterministic ShardPlan slice
    # from its own ledger (no coordination — the plan is a pure
    # function of the manifest), then runs it through the same
    # execute_lease code path the dynamic worker loop uses.
    ledger = WorkLedger(manifest, lease_ttl=None)
    lease = ledger.pre_lease_shard(num_shards, shard_index)
    indices = lease.indices
    if policies is None:
        policies = default_policies()
    missing = [p for p in manifest["policies"] if p not in policies]
    if missing:
        raise ValueError(
            f"manifest names policies {missing} with no factory; "
            f"available: {sorted(policies)}"
        )
    # The manifest's policy order defines the cell flattening; feed
    # the factories in exactly that order.
    ordered = {name: policies[name] for name in manifest["policies"]}
    if runner is None:
        runner = ParallelRunner(workers=workers or None)
    t0 = time.perf_counter()
    cells, failures = execute_lease(
        runner, specs, ordered, soc, indices, supervision
    )
    wall_seconds = time.perf_counter() - t0
    return {
        "format": PARTIAL_FORMAT,
        "manifest": manifest,
        "manifest_digest": ledger.digest,
        # The manifest describes the workload; the SoC describes the
        # simulated hardware.  Recorded so merge can refuse partials
        # computed under different hardware models (the manifest
        # digest alone cannot see this).
        "soc": dataclasses.asdict(soc),
        "shard": {
            "index": shard_index,
            "count": num_shards,
            "cell_indices": list(indices),
            "cost": lease.cost,
            "wall_seconds": wall_seconds,
            "workers": runner.workers,
            "mode": runner.last_mode,
        },
        "cells": [cell_to_dict(c) for c in cells],
        # Quarantined cells (supervised runs only; empty otherwise).
        # Merge treats them as "failed", distinct from "missing": a
        # failed cell was attempted and gave up, a missing cell was
        # never supplied by any partial.
        "failures": [failure_to_dict(f) for f in failures],
    }


def partial_to_json(partial: dict) -> str:
    """Render a partial artifact as pretty, stable JSON text."""
    return json.dumps(partial, indent=2, sort_keys=True) + "\n"


def _validate_partial_shape(partial: dict) -> None:
    """Refuse a partial missing its top-level structure.

    Keeps truncated or hand-edited documents in the ValueError family
    (clean one-line CLI errors) instead of leaking KeyErrors from
    field access deeper in the merge."""
    if partial.get("format") != PARTIAL_FORMAT:
        raise ValueError(
            f"not a {PARTIAL_FORMAT} document "
            f"(format={partial.get('format')!r})"
        )
    missing = [
        key
        for key in ("manifest", "manifest_digest", "soc", "shard", "cells")
        if key not in partial
    ]
    if missing:
        raise ValueError(
            f"malformed partial document (missing {missing})"
        )
    if (
        not isinstance(partial["manifest"], dict)
        or not isinstance(partial["manifest_digest"], str)
        or not isinstance(partial["soc"], dict)
        or not isinstance(partial["cells"], list)
    ):
        raise ValueError(
            "malformed partial document (wrongly typed manifest/"
            "manifest_digest/soc/cells)"
        )
    # "failures" arrived with the fault-tolerance layer; absent (old
    # artifacts) means "none recorded".
    if not isinstance(partial.get("failures", []), list):
        raise ValueError(
            "malformed partial document (wrongly typed 'failures')"
        )
    shard = partial["shard"]
    if (
        not isinstance(shard, dict)
        or not isinstance(shard.get("index"), int)
        or not isinstance(shard.get("count"), int)
        or not isinstance(shard.get("cell_indices"), list)
        or not all(isinstance(i, int) for i in shard["cell_indices"])
        # bool is an int subclass; a JSON true/false here is corrupt.
        or isinstance(shard["index"], bool)
        or isinstance(shard["count"], bool)
    ):
        raise ValueError(
            "malformed partial document (incomplete or wrongly "
            "typed 'shard' section)"
        )


def verify_stored_digest(partial: dict, what: str) -> str:
    """Re-verify a self-describing artifact's stored manifest digest
    against a recomputation over its embedded manifest.

    The tamper refusal, shared by the shard merge path and the
    coordinator's submit validation: an artifact whose stored digest
    does not match its own manifest was corrupted or hand-edited and
    must not fold into any aggregate.  Returns the verified digest.
    """
    actual = manifest_digest(partial["manifest"])
    if actual != partial["manifest_digest"]:
        raise ValueError(
            f"{what}: stored manifest digest "
            f"{partial['manifest_digest'][:12]} does not match "
            f"its manifest ({actual[:12]}) — corrupt or tampered "
            f"artifact"
        )
    return actual


def partial_from_json(text: str) -> dict:
    """Parse a partial artifact, rejecting foreign or truncated
    documents."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError(
            f"not a {PARTIAL_FORMAT} document "
            f"(got {type(payload).__name__})"
        )
    _validate_partial_shape(payload)
    return payload


class CellJournal:
    """Append-only per-cell checkpoint for crash-resumable sweeps.

    A supervised ``sweep --out DIR`` appends one line per settled cell
    (result or quarantined failure) to ``DIR/cells.jsonl`` *as it
    settles*, so a sweep killed mid-flight — parent crash, OOM kill,
    Ctrl-C — strands no finished work: ``sweep --resume DIR`` replays
    the journal and re-runs only what is genuinely missing.

    Integrity model: torn and damaged lines are expected (that is what
    a crash leaves behind), so every line carries a SHA-256 of its
    canonical payload JSON.  The reader verifies each line and *skips*
    what fails — a corrupt journal line degrades to a re-run of that
    cell, never to silently wrong bytes in the export.  The header
    line binds the journal to its sweep (manifest digest) and hardware
    model (SoC), so a resume against the wrong directory is refused
    before any simulation time is spent.

    The journal is scaffolding, not an artifact: a sweep that reaches
    a complete export deletes it (:meth:`discard`), keeping export
    directories byte-comparable with fault-free runs.
    """

    def __init__(self, path: Path, digest: str) -> None:
        self.path = Path(path)
        self.digest = digest
        self._fh = None

    # -- writing -------------------------------------------------------

    @classmethod
    def open(
        cls, out_dir, manifest: dict, soc: SoCConfig
    ) -> "CellJournal":
        """Open (or start) the journal for ``out_dir``.

        A fresh sweep writes the header; a resume validates the
        existing header (digest + SoC) and appends after it.
        """
        digest = manifest_digest(manifest)
        path = Path(out_dir) / JOURNAL_NAME
        journal = cls(path, digest)
        soc_dict = dataclasses.asdict(soc)
        if path.exists():
            # Replaying first (via read()) is the caller's job; here
            # we only refuse to append to a foreign journal.
            header = cls._read_header(path)
            if header["manifest_digest"] != digest:
                raise ValueError(
                    f"journal {path} belongs to a different sweep "
                    f"(manifest digest {header['manifest_digest'][:12]} "
                    f"vs {digest[:12]})"
                )
            if header["soc"] != soc_dict:
                raise ValueError(
                    f"journal {path} was recorded under a different "
                    f"SoC configuration"
                )
            journal._fh = path.open("ab")
        else:
            journal._fh = path.open("wb")
            # The full manifest rides in the header: a sweep killed
            # before export time leaves *only* the journal behind, and
            # resume must still be able to rebuild the specs.
            header = {
                "format": JOURNAL_FORMAT,
                "manifest_digest": digest,
                "manifest": manifest,
                "soc": soc_dict,
            }
            journal._append("header", header)
        return journal

    def _append(
        self, kind: str, data: dict, corrupt_seed: Optional[int] = None
    ) -> None:
        """Write one checksummed line (checksum of the *canonical*
        payload, computed before any injected corruption — so injected
        damage is guaranteed to be detectable)."""
        from repro.experiments.faults import corrupt_bytes

        data_json = json.dumps(
            data, sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(data_json.encode()).hexdigest()
        payload = data_json.encode()
        if corrupt_seed is not None:
            payload = corrupt_bytes(payload, seed=corrupt_seed)
        line = (
            b'{"kind":"' + kind.encode()
            + b'","sha256":"' + digest.encode()
            + b'","data":' + payload + b"}\n"
        )
        self._fh.write(line)
        self._fh.flush()

    def append_cell(self, cell, corrupt: bool = False) -> None:
        """Checkpoint a completed cell (``corrupt`` is the fault
        harness's hook: damage this line's payload bytes on disk)."""
        self._append(
            "cell", cell_to_dict(cell),
            corrupt_seed=cell.index if corrupt else None,
        )

    def append_failure(self, failure: CellFailure) -> None:
        """Checkpoint a quarantined failure."""
        self._append("failure", failure_to_dict(failure))

    def append_event(self, kind: str, data: dict) -> None:
        """Checkpoint an extension event (checksummed like any line).

        The coordinator journals its lease-op audit trail through
        this (``kind="lease-op"``).  :meth:`read` ignores kinds it
        does not aggregate, so extension lines never cost a resume
        anything; consumers that care (``WorkLedger.replay``) read
        them with :meth:`read_events`.
        """
        if kind in ("header", "cell", "failure"):
            raise ValueError(
                f"append_event cannot write reserved kind {kind!r}"
            )
        self._append(kind, data)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def discard(self) -> None:
        """Delete the journal (the sweep's export is complete — the
        scaffolding must not make the directory differ from a
        fault-free run's)."""
        self.close()
        if self.path.exists():
            self.path.unlink()

    def __enter__(self) -> "CellJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------

    @staticmethod
    def _read_header(path: Path) -> dict:
        with path.open("rb") as fh:
            first = fh.readline()
        header = CellJournal._verify_line(first)
        if (
            header is None
            or header[0] != "header"
            or header[1].get("format") != JOURNAL_FORMAT
            or not isinstance(header[1].get("manifest_digest"), str)
            or not isinstance(header[1].get("manifest"), dict)
            or not isinstance(header[1].get("soc"), dict)
            or manifest_digest(header[1]["manifest"])
            != header[1]["manifest_digest"]
        ):
            raise ValueError(
                f"{path} is not a readable {JOURNAL_FORMAT} journal "
                f"(corrupt or foreign header); delete it to start "
                f"the sweep over"
            )
        return header[1]

    @staticmethod
    def _verify_line(raw: bytes):
        """Parse + checksum one line; ``None`` if it fails either."""
        try:
            entry = json.loads(raw)
        except ValueError:
            return None
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("kind"), str)
            or not isinstance(entry.get("sha256"), str)
            or "data" not in entry
        ):
            return None
        canonical = json.dumps(
            entry["data"], sort_keys=True, separators=(",", ":")
        )
        if hashlib.sha256(canonical.encode()).hexdigest() != entry["sha256"]:
            return None
        return entry["kind"], entry["data"]

    @classmethod
    def read(
        cls,
        path,
        expected_digest: Optional[str] = None,
        expected_soc: Optional[dict] = None,
    ) -> Tuple[list, List[CellFailure], int]:
        """Replay a journal: ``(cells, failures, skipped_lines)``.

        Damaged lines (torn writes, flipped bytes — anything whose
        checksum or JSON fails) are counted in ``skipped_lines`` and
        otherwise ignored: those cells simply stay missing and get
        re-run.  A bad *header* is a hard ``ValueError`` — without it
        the journal cannot be tied to a sweep, so resuming from it
        would be a guess.  Duplicate entries for a cell keep the first
        (journal order is settle order; a later duplicate only arises
        from a resume replaying work, which by retry-determinism is
        bit-identical anyway).  A cell that has both a result and a
        failure entry resolves to the result — success supersedes.
        """
        path = Path(path)
        header = cls._read_header(path)
        if (
            expected_digest is not None
            and header["manifest_digest"] != expected_digest
        ):
            raise ValueError(
                f"journal {path} belongs to a different sweep "
                f"(manifest digest {header['manifest_digest'][:12]} "
                f"vs {expected_digest[:12]})"
            )
        if expected_soc is not None and header["soc"] != expected_soc:
            raise ValueError(
                f"journal {path} was recorded under a different SoC "
                f"configuration"
            )
        cells: Dict[int, object] = {}
        failures: Dict[int, CellFailure] = {}
        skipped = 0
        with path.open("rb") as fh:
            fh.readline()  # header, already verified
            for raw in fh:
                verified = cls._verify_line(raw)
                if verified is None:
                    skipped += 1
                    continue
                kind, data = verified
                try:
                    if kind == "cell":
                        cell = cell_from_dict(data)
                        cells.setdefault(cell.index, cell)
                    elif kind == "failure":
                        failure = failure_from_dict(data)
                        failures.setdefault(failure.index, failure)
                    # Any other checksum-valid kind is an extension
                    # event (e.g. the coordinator's lease-op audit
                    # lines): not aggregated here, but not damage
                    # either — see read_events().
                except (KeyError, TypeError, ValueError):
                    skipped += 1
        if skipped:
            print(
                f"journal: skipped {skipped} damaged line(s) in "
                f"{path}; the affected cells will be re-run",
                file=sys.stderr,
            )
        for index in cells:
            failures.pop(index, None)
        return (
            [cells[i] for i in sorted(cells)],
            [failures[i] for i in sorted(failures)],
            skipped,
        )

    @classmethod
    def read_events(cls, path, kind: str) -> list:
        """All checksum-valid extension events of one kind, in journal
        order (damaged lines are silently skipped, matching
        :meth:`read`).  This is how ``WorkLedger.replay`` recovers a
        coordinator's lease-op audit trail."""
        path = Path(path)
        cls._read_header(path)
        events = []
        with path.open("rb") as fh:
            fh.readline()  # header, already verified
            for raw in fh:
                verified = cls._verify_line(raw)
                if verified is not None and verified[0] == kind:
                    events.append(verified[1])
        return events


def merge_partials(
    partials: Sequence[dict], require_complete: bool = True
) -> SweepResults:
    """Fold shard partial artifacts into one sweep accumulator.

    Partials may arrive in any order.  Rejected loudly:

    - partials whose manifests differ (compared by digest, and each
      partial's stored digest is re-verified against its embedded
      manifest — a tampered artifact cannot slip in) or whose
      recorded SoC configurations differ (the workload manifest
      cannot see the hardware model);
    - inconsistent shard counts, repeated shard indices, a declared
      slice that disagrees with the deterministic :class:`ShardPlan`
      for the manifest, or a partial whose cells do not match its
      declared slice;
    - overlapping cells across partials;
    - gaps (missing cells), unless ``require_complete=False`` — the
      error names the absent shard indices so the operator knows
      which host to chase.

    The merged accumulator is bit-identical to running the whole
    sweep on one host (same :meth:`SweepResults.matrix`, same export
    bytes).
    """
    if not partials:
        raise ValueError("no partials to merge")
    reference = None
    for partial in partials:
        _validate_partial_shape(partial)
        verify_stored_digest(
            partial,
            f"shard "
            f"{_shard_label(partial['shard']['index'], partial['shard']['count'])}",
        )
        if reference is None:
            reference = partial
        elif partial["manifest_digest"] != reference["manifest_digest"]:
            raise ValueError(
                f"partials from different sweeps: manifest digest "
                f"{partial['manifest_digest'][:12]} (shard "
                f"{_shard_label(partial['shard']['index'], partial['shard']['count'])}) "
                f"vs {reference['manifest_digest'][:12]} (shard "
                f"{_shard_label(reference['shard']['index'], reference['shard']['count'])}); "
                f"shards are only mergeable when every host ran the "
                f"identical manifest"
            )
        if partial["shard"]["count"] != reference["shard"]["count"]:
            raise ValueError(
                f"partials from different shard plans: {partial['shard']['count']} "
                f"shards vs {reference['shard']['count']}"
            )
        if partial["soc"] != reference["soc"]:
            raise ValueError(
                f"partials from different SoC configurations (shard "
                f"{_shard_label(partial['shard']['index'], partial['shard']['count'])} "
                f"vs shard "
                f"{_shard_label(reference['shard']['index'], reference['shard']['count'])}); "
                f"every host must simulate the identical hardware "
                f"model"
            )
    seen_shards: Dict[int, int] = {}
    for partial in partials:
        idx = partial["shard"]["index"]
        seen_shards[idx] = seen_shards.get(idx, 0) + 1
    count = reference["shard"]["count"]
    repeated = [
        _shard_label(i, count)
        for i, n in sorted(seen_shards.items())
        if n > 1
    ]
    if repeated:
        raise ValueError(
            f"shard(s) {repeated} supplied more than once; drop the "
            f"duplicate partial files"
        )
    manifest = reference["manifest"]
    specs = manifest_specs(manifest)
    plan = ShardPlan.from_manifest(manifest, count)
    acc = SweepResults(specs, list(manifest["policies"]))
    owner: Dict[int, int] = {}
    for partial in partials:
        shard = partial["shard"]
        # Hold every partial to the deterministic plan the digest
        # implies — a slice from a different tie-break (or a shard
        # index outside the plan) would still pass the cell-level
        # checks but corrupt the gap diagnostics below.
        if not 0 <= shard["index"] < count:
            raise ValueError(
                f"shard index {shard['index']} outside the "
                f"{count}-shard plan"
            )
        if sorted(shard["cell_indices"]) != list(plan.shard(shard["index"])):
            raise ValueError(
                f"shard {_shard_label(shard['index'], count)}: declared "
                f"slice does not match the deterministic plan for this "
                f"manifest (partial produced by a different planner?)"
            )
        try:
            cells = [cell_from_dict(c) for c in partial["cells"]]
            failures = [
                failure_from_dict(f)
                for f in partial.get("failures", [])
            ]
        except (KeyError, TypeError, ValueError) as exc:
            # Keep corruption failures in the same ValueError family
            # as every other refusal (the CLI maps those to clean
            # one-line errors).
            raise ValueError(
                f"shard {_shard_label(shard['index'], count)}: "
                f"malformed cell payload ({exc!r})"
            ) from exc
        covered = sorted(
            [c.index for c in cells] + [f.index for f in failures]
        )
        if covered != sorted(shard["cell_indices"]):
            raise ValueError(
                f"shard {_shard_label(shard['index'], count)}: cells "
                f"present (succeeded + quarantined) do not match its "
                f"declared slice (truncated artifact?)"
            )
        for index in covered:
            if index in owner:
                raise ValueError(
                    f"cell {index} appears in shard "
                    f"{_shard_label(owner[index], count)} and "
                    f"shard {_shard_label(shard['index'], count)} "
                    f"— overlapping partials"
                )
            owner[index] = shard["index"]
        for cell in cells:
            acc.add(cell)
        for failure in failures:
            acc.add_failure(failure)
    if require_complete and not acc.complete:
        missing = acc.missing_indices()
        failed = acc.failed_indices()
        absent = [
            _shard_label(s, count)
            for s in range(plan.num_shards)
            if s not in seen_shards and plan.shard(s)
        ]
        raise ValueError(
            f"merge incomplete: {len(missing)} of {acc.expected} "
            f"cells missing (first: {missing[:5]}), {len(failed)} of "
            f"them quarantined failures; absent shard(s): {absent}; "
            f"quarantined cells can be re-run with sweep --resume"
        )
    return acc
