"""Parallel experiment executor: fan the evaluation matrix over processes.

The paper's evaluation is a matrix of independent cells — one
``(scenario, policy, seed)`` triple per simulation — and every cell is
a pure function of its inputs (the workload generator reseeds from the
cell's seed, the engine is exactly deterministic).  That makes the
harness embarrassingly parallel, and this module exploits it with a
:class:`concurrent.futures.ProcessPoolExecutor`.

Streaming model
---------------

:meth:`ParallelRunner.iter_cells` flattens ``specs x policies x
seeds`` into indexed cell payloads, ships them to worker processes in
chunks, and **yields one** :class:`~repro.experiments.results.
CellResult` **per completed cell as its future resolves** — no barrier
across the sweep.  Completion order is nondeterministic in pool mode;
every cell carries its global submission index, and
:class:`~repro.experiments.results.SweepResults` folds the stream back
into the deterministic ``{label: {policy: ScenarioResult}}`` matrix.
:meth:`ParallelRunner.run_matrix` is exactly that composition, so it
stays drop-in interchangeable and numerically identical with the
serial :func:`repro.experiments.runner.run_matrix`.

Warm workers
------------

Every worker process is started with an initializer that pre-warms the
process-global network-cost cache and the per-block predict memos for
the models of the sweep (:func:`repro.core.latency.
warm_network_cost_cache`).  Fork-start hosts inherit the parent's warm
caches anyway; on spawn-start hosts the initializer is what keeps each
cell from paying the cold-start that PR 1's review flagged.  Each
:class:`CellResult` carries cache hit/miss deltas, so warmth is
observable: a warm worker's cells report zero ``cost_cache_misses``.

For timing-sensitive callers, :meth:`ParallelRunner.start_pool` makes
the pool persistent and forces every worker to spawn (and warm) *now*;
subsequent :meth:`run_matrix` / :meth:`iter_cells` calls reuse it —
``scripts/bench_perf.py`` warms the pool before its timed leg this
way.  :meth:`close_pool` (or using the runner as a context manager)
releases it.

Pickling constraints
--------------------

Everything crossing the process boundary must pickle: the
:class:`ScenarioSpec`, the :class:`SoCConfig` and each policy *factory*
(the class itself, not an instance).  The four built-in policies are
top-level classes and pickle fine; a lambda or closure factory does
not, and the runner detects this up front and **falls back to serial
in-process execution** (same cell code, same results) rather than
failing.  The fallback also engages for ``workers=1``, single-cell
matrices, sandboxes where process pools cannot start, and pools that
break mid-sweep (already-yielded cells are kept; only the remainder
reruns serially).

Reading ``BENCH_perf.json``
---------------------------

``scripts/bench_perf.py`` times a fixed reference matrix through both
paths and writes ``BENCH_perf.json``: ``serial.seconds`` vs
``parallel.seconds`` (and their ratio, ``speedup``) measure this
module; ``engine.events_per_sec`` and the ``block_time_*`` counters
measure the simulator's incremental hot path; ``identical_metrics``
asserts the two paths agreed bit-for-bit; ``host.start_method`` and
``parallel.cache`` record the worker start method and the aggregated
cache counters the warm-worker path is judged by.  Every future
performance PR should beat the checked-in trajectory.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.config import DEFAULT_SOC, SoCConfig
from repro.experiments import faults
from repro.experiments.faults import FaultPlan
from repro.experiments.results import (
    DECISION_COUNTER_FIELDS,
    CellFailure,
    CellResult,
    SweepResults,
)
from repro.experiments.runner import (
    PolicyFactory,
    ScenarioResult,
    ScenarioSpec,
    check_unique_labels,
    default_policies,
    run_cell_detail,
)
from repro.scenarios import ScenarioLike, resolve_scenarios

#: One unit of parallel work: (global cell index, spec index, spec,
#: policy name, policy factory, seed, SoC, solver).  The global index
#: is the deterministic aggregation key; the spec index disambiguates
#: duplicate labels.  The solver override rides at the *end* so the
#: positional reads of the leading fields (quarantine, sharding)
#: stay stable; ``None`` means the engine default and is never
#: serialized into manifests or exports — all three solvers are
#: bit-identical, so the choice is operational, not part of a cell's
#: identity.
_CellPayload = Tuple[
    int, int, ScenarioSpec, str, PolicyFactory, int, SoCConfig,
    Optional[str],
]


@dataclass(frozen=True)
class Supervision:
    """Per-cell failure-handling policy for :meth:`ParallelRunner.
    run_supervised`.

    Attributes:
        max_retries: Re-executions granted to a failing cell beyond
            its first attempt; a cell failing ``max_retries + 1``
            times is quarantined as a :class:`~repro.experiments.
            results.CellFailure` instead of aborting the sweep.
        cell_timeout: Wall-clock seconds a cell may run inside its
            worker before it is declared hung; ``None`` disables the
            timeout.  Timeouts are only enforceable in pool mode (a
            serial in-process cell cannot be interrupted).
        backoff_base: First retry delay in seconds; retry ``n`` waits
            ``backoff_base * backoff_factor**n``.  Deterministic (no
            jitter) — reproducibility extends to the retry schedule.
        backoff_factor: Exponential backoff multiplier.
        fault_plan: Deterministic fault injection to install in the
            workers (and, for in-process-safe kinds, the parent) —
            the testing seam of :mod:`repro.experiments.faults`.
    """

    max_retries: int = 2
    cell_timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Delay before re-running a cell whose attempt ``attempt``
        failed."""
        return self.backoff_base * self.backoff_factor ** attempt


@dataclass(frozen=True)
class CellTiming:
    """Wall-clock cost of one (scenario, policy, seed) simulation.

    Attributes:
        label: Scenario label.
        policy: Policy name.
        seed: Workload seed.
        seconds: Wall seconds the cell took inside its worker.
    """

    label: str
    policy: str
    seed: int
    seconds: float


def _run_cell(payload: _CellPayload, attempt: int = 0) -> CellResult:
    """Execute one matrix cell (runs inside a worker process).

    Delegates to :func:`repro.experiments.runner.run_cell_detail` —
    the same recipe the serial path uses — and wraps the summary with
    timing, engine/decision counters
    and cache telemetry (a per-cell delta frame spanning the whole
    cell, generation included, so warm-cache behaviour is observable
    from the parent and concurrent accounting in the same process —
    e.g. the broken-pool serial fallback rerunning cells in the
    parent — cannot double-count).

    ``attempt`` is the supervised executor's retry counter; it feeds
    the (single) fault-injection point and nothing else — the cell's
    simulation is a pure function of the payload, so a retried cell
    returns exactly the result the first attempt would have.
    """
    from repro.core.latency import track_cache_deltas

    index, spec_idx, spec, policy_name, factory, seed, soc, solver = (
        payload
    )
    faults.maybe_inject(index, attempt)
    t0 = time.perf_counter()
    with track_cache_deltas() as cache_delta:
        summary, sim_result = run_cell_detail(
            spec, policy_name, factory, seed, soc, solver=solver
        )
    seconds = time.perf_counter() - t0
    return CellResult(
        index=index,
        spec_index=spec_idx,
        label=spec.label,
        policy=policy_name,
        seed=seed,
        summary=summary,
        seconds=seconds,
        worker_pid=os.getpid(),
        **cache_delta,
        **{
            name: getattr(sim_result, name)
            for name in DECISION_COUNTER_FIELDS
        },
    )


def _run_cell_chunk(payloads: Sequence[_CellPayload]) -> List[CellResult]:
    """Worker entry point for one submission chunk."""
    return [_run_cell(p) for p in payloads]


def _run_cell_supervised(
    payload: _CellPayload, attempt: int
) -> CellResult:
    """Worker entry point for one supervised (per-cell) submission."""
    return _run_cell(payload, attempt)


def _warm_worker(
    model_names: Sequence[str],
    soc: SoCConfig,
    fault_plan: Optional[FaultPlan] = None,
    store_dir: Optional[str] = None,
) -> int:
    """Pool initializer: pre-warm this worker's cost/predict caches.

    Runs once per worker process before it takes any cell; idempotent
    (re-running is a pure cache hit), so it doubles as the payload of
    :meth:`ParallelRunner.start_pool`'s spawn-forcing probes.

    ``fault_plan`` activates deterministic fault injection *in this
    worker* (the per-cell harness of :mod:`repro.experiments.faults`);
    installing it here — rather than per payload — means every cell
    the worker ever runs consults the same plan, spawn or fork alike.

    ``store_dir`` points the warm at an on-disk
    :class:`~repro.core.latency.PrecomputeStore`: spawn-start workers
    (which inherit nothing) load the parent's saved block accounting
    instead of each rebuilding it from the layer graphs.
    """
    from repro.core.latency import warm_network_cost_cache
    from repro.models.zoo import build_model

    faults.install_plan(fault_plan, in_worker=True)
    return warm_network_cost_cache(
        [build_model(name) for name in model_names], soc,
        store=store_dir,
    )


def _warm_probe(
    model_names: Sequence[str],
    soc: SoCConfig,
    barrier=None,
) -> Tuple[int, bool]:
    """Pool task that warms (idempotently) and reports its worker pid.

    ``barrier`` (a manager-proxied ``multiprocessing.Barrier`` sized
    to the worker count) makes the probes a true rendezvous: each
    probe blocks until every worker holds one, so N probes provably
    ran on N *distinct*, fully initialized workers — without it, one
    fast worker could drain every probe while its siblings are still
    cold-starting.  A broken/timed-out barrier (e.g. a worker died)
    degrades to returning anyway rather than wedging the pool — but
    no longer silently: the returned flag records the failed
    rendezvous so the parent can warn and count it in telemetry
    (:attr:`ParallelRunner.last_warmup_timeouts`), instead of the
    distinct-worker guarantee degrading invisibly.
    """
    # Warm directly rather than via _warm_worker: re-running the
    # initializer would clobber the fault plan it installed.
    from repro.core.latency import warm_network_cost_cache
    from repro.models.zoo import build_model

    warm_network_cost_cache(
        [build_model(name) for name in model_names], soc
    )
    warmup_timed_out = False
    if barrier is not None:
        try:
            barrier.wait(timeout=60)
        except Exception:
            warmup_timed_out = True
    return os.getpid(), warmup_timed_out


def _spec_model_names(specs: Sequence[ScenarioSpec]) -> Tuple[str, ...]:
    """Distinct zoo model names the sweep's cells will build."""
    from repro.models.zoo import WORKLOAD_SETS

    names: Set[str] = set()
    for spec in specs:
        if spec.model_mix is not None:
            names.update(name for name, _ in spec.model_mix)
        else:
            names.update(WORKLOAD_SETS[spec.workload_set.upper()])
    return tuple(sorted(names))


def matrices_identical(
    a: Dict[str, Dict[str, ScenarioResult]],
    b: Dict[str, Dict[str, ScenarioResult]],
) -> bool:
    """Whether two matrix results carry identical metric summaries.

    The serial and parallel executors must agree bit-for-bit; this is
    the one comparison used by the smoke script, the perf benchmark
    and any caller wanting to assert the equivalence.  Compare a
    single scenario cell by wrapping it: ``{label: cell}``.
    """
    if set(a) != set(b):
        return False
    for label, cell in a.items():
        if set(cell) != set(b[label]):
            return False
        for policy, result in cell.items():
            if result.per_seed != b[label][policy].per_seed:
                return False
    return True


def _picklable(obj: object) -> bool:
    """Whether ``obj`` survives the process boundary."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


class ParallelRunner:
    """Run evaluation matrices across a process pool.

    Attributes:
        workers: Worker process count; ``None`` auto-sizes to the CPU
            count.  ``1`` always runs serially in-process.
        chunk_size: Cells per submission chunk; ``None`` derives a
            chunk that splits the payload across ``4 x workers``
            slices so uneven cells rebalance.  Streaming granularity
            is one chunk: a chunk's cells are yielded together when
            its future completes.
        warm_start: Start every worker with the cache-warming
            initializer (default True; fork hosts inherit warmth
            either way, spawn hosts need it).
        last_timings: Per-cell wall-clock timings of the most recent
            :meth:`run_matrix` call, in submission order (spec, then
            policy, then seed) — not completion order.
        last_cells: The :class:`CellResult` stream of the most recent
            :meth:`run_matrix` call, in submission order.
        last_sweep: The :class:`~repro.experiments.results.
            SweepResults` accumulator of the most recent
            :meth:`run_matrix` call (``None`` before the first) —
            exposes :meth:`~repro.experiments.results.SweepResults.
            cache_stats` and :meth:`~repro.experiments.results.
            SweepResults.worker_pids` for telemetry consumers.
        last_mode: ``"parallel"`` or ``"serial"`` — which path the most
            recent :meth:`run_matrix` / :meth:`iter_cells` call
            actually took (a pool that broke mid-sweep reports
            ``"serial"``, the degraded mode the remainder ran in).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        warm_start: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        solver: Optional[str] = None,
        precompute_dir: Optional[str] = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if solver is not None and solver not in (
            "kernel", "vector", "scalar"
        ):
            raise ValueError(
                f"unknown solver {solver!r} "
                f"(expected 'kernel', 'vector' or 'scalar')"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.warm_start = warm_start
        #: Engine solver override for every cell this runner executes
        #: (``None`` = the engine default).  Operational only — all
        #: solvers are pinned bit-identical — so it never enters
        #: manifests, digests or exports.
        self.solver = solver
        #: Directory of an on-disk
        #: :class:`~repro.core.latency.PrecomputeStore`; when set,
        #: the parent warms from/into it before building payloads and
        #: every pool worker's initializer does the same, sharing the
        #: block-cost precompute across processes and runs.
        self.precompute_dir = (
            os.fspath(precompute_dir)
            if precompute_dir is not None else None
        )
        #: (model names, soc) combinations already store-warmed in
        #: this process — the parent-side warm is once per sweep
        #: shape, not once per run_matrix call.
        self._precompute_warmed: Set[Tuple[Tuple[str, ...], SoCConfig]]
        self._precompute_warmed = set()
        #: Deterministic fault plan installed into every pool worker
        #: (via the initializer) — the testing seam that makes the
        #: failure paths below reproducible.  ``None`` in production.
        self.fault_plan = fault_plan
        self.last_timings: List[CellTiming] = []
        self.last_cells: List[CellResult] = []
        self.last_sweep: Optional[SweepResults] = None
        self.last_mode: str = "serial"
        #: Warm probes whose barrier rendezvous timed out in the most
        #: recent :meth:`start_pool` (0 = every worker rendezvoused).
        self.last_warmup_timeouts: int = 0
        #: Same, accumulated over every pool this runner has started —
        #: the telemetry workers report to a coordinator over the
        #: heartbeat channel (a runner can warm several pools in one
        #: sweep; the coordinator wants the run total, not the last).
        self.total_warmup_timeouts: int = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0

    # ------------------------------------------------------------------
    # Persistent pool management
    # ------------------------------------------------------------------

    def start_pool(
        self,
        specs: Sequence[ScenarioLike] = (),
        soc: Optional[SoCConfig] = None,
    ) -> List[int]:
        """Start a persistent worker pool and warm it *now*.

        Creates the pool (with the warm initializer covering the
        models of ``specs``), then submits one warm probe per worker,
        rendezvoused on a barrier so every worker process provably
        spawns and builds its caches before this call returns —
        moving cold-start out of whatever the caller times next.
        (Without the rendezvous a fast worker could consume all the
        probes while its siblings are still initializing.)  If the
        barrier machinery itself is unavailable (no manager process
        in this sandbox), the probes still run, just without the
        distinct-worker guarantee.  Subsequent :meth:`run_matrix` /
        :meth:`iter_cells` calls reuse the pool until
        :meth:`close_pool`.

        Returns:
            The distinct worker pids that answered the probes (empty
            if the pool could not start; the runner then degrades to
            per-call pools / serial fallback as usual).
        """
        if self._pool is not None:
            raise RuntimeError("pool already started")
        if self.workers == 1:
            # The executor will run serially in-process; a warm pool
            # would sit idle (and its telemetry would contradict
            # last_mode == "serial").
            return []
        spec_list = resolve_scenarios(specs) if specs else []
        if soc is None:
            soc = DEFAULT_SOC
        workers = min(self.workers, 61)
        pool = None
        manager = None
        try:
            pool = self._make_pool(workers, spec_list, soc)
            model_names = _spec_model_names(spec_list)
            barrier = None
            if workers > 1:
                import multiprocessing

                try:
                    manager = multiprocessing.Manager()
                    barrier = manager.Barrier(workers)
                except Exception:
                    manager = None  # degrade: probes without rendezvous
            probes = [
                pool.submit(_warm_probe, model_names, soc, barrier)
                for _ in range(workers)
            ]
            wait(probes)
            answers = [p.result() for p in probes]
            pids = sorted({pid for pid, _ in answers})
            self.last_warmup_timeouts = sum(
                1 for _, timed_out in answers if timed_out
            )
            self.total_warmup_timeouts += self.last_warmup_timeouts
            if self.last_warmup_timeouts:
                print(
                    f"parallel: warm-up rendezvous timed out on "
                    f"{self.last_warmup_timeouts} of {workers} "
                    f"probe(s); the distinct-worker warm-start "
                    f"guarantee does not hold for this pool",
                    file=sys.stderr,
                )
        except (OSError, BrokenProcessPool) as exc:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            print(
                f"parallel: persistent pool unavailable "
                f"({type(exc).__name__}: {exc})",
                file=sys.stderr,
            )
            return []
        finally:
            if manager is not None:
                manager.shutdown()
        self._pool = pool
        self._pool_workers = workers
        return pids

    def close_pool(self) -> None:
        """Shut the persistent pool down (no-op without one)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_pool()

    def _make_pool(
        self,
        workers: int,
        spec_list: Sequence[ScenarioSpec],
        soc: SoCConfig,
    ) -> ProcessPoolExecutor:
        warm = self.warm_start and spec_list
        if (
            warm
            or self.fault_plan is not None
            or self.precompute_dir is not None
        ):
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_warm_worker,
                initargs=(
                    _spec_model_names(spec_list) if warm else (),
                    soc,
                    self.fault_plan,
                    self.precompute_dir,
                ),
            )
        return ProcessPoolExecutor(max_workers=workers)

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even if a worker is wedged.

        ``shutdown`` alone would join a hung worker forever; after
        cancelling what has not started, any worker process still
        alive is terminated outright.  Reaches into executor
        internals (``_processes``) — guarded, and acceptable for a
        pool that is already being discarded for cause.
        """
        pool.shutdown(wait=False, cancel_futures=True)
        try:
            for proc in list(getattr(pool, "_processes", {}).values()):
                if proc.is_alive():
                    proc.terminate()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run_scenario(
        self,
        spec: ScenarioLike,
        policies: Optional[Dict[str, PolicyFactory]] = None,
        soc: Optional[SoCConfig] = None,
    ) -> Dict[str, ScenarioResult]:
        """Parallel equivalent of :func:`runner.run_scenario`."""
        spec = resolve_scenarios([spec])[0]
        matrix = self.run_matrix([spec], policies, soc)
        return matrix[spec.label]

    def run_matrix(
        self,
        specs: Sequence[ScenarioLike],
        policies: Optional[Dict[str, PolicyFactory]] = None,
        soc: Optional[SoCConfig] = None,
    ) -> Dict[str, Dict[str, ScenarioResult]]:
        """Parallel equivalent of :func:`runner.run_matrix`.

        Streams cells through :meth:`iter_cells` and folds each one
        into a :class:`~repro.experiments.results.SweepResults` the
        moment it completes — per-seed summaries aggregate
        incrementally, there is no end-of-sweep barrier beyond
        exhausting the stream.  Accepts registry names as well as
        specs.  Returns ``{scenario label: {policy: ScenarioResult}}``
        with numerically identical contents to the serial path.
        """
        if policies is None:
            policies = default_policies()
        spec_list = resolve_scenarios(specs)
        acc = SweepResults(spec_list, list(policies))
        for cell in self.iter_cells(spec_list, policies, soc):
            acc.add(cell)
        cells = acc.cells()
        self.last_sweep = acc
        self.last_cells = cells
        self.last_timings = [
            CellTiming(
                label=c.label, policy=c.policy, seed=c.seed,
                seconds=c.seconds,
            )
            for c in cells
        ]
        return acc.matrix()

    def iter_cells(
        self,
        specs: Sequence[ScenarioLike],
        policies: Optional[Dict[str, PolicyFactory]] = None,
        soc: Optional[SoCConfig] = None,
        indices: Optional[Sequence[int]] = None,
    ) -> Iterator[CellResult]:
        """Yield every cell of the sweep as it completes.

        Pool mode yields in completion order (nondeterministic);
        serial mode in submission order.  The *set* of cells is
        deterministic either way, and every cell carries its global
        submission ``index``, so feeding the stream to
        :class:`~repro.experiments.results.SweepResults` yields the
        same aggregate regardless of arrival order.

        ``indices`` restricts execution to a subset of the sweep's
        global cell indices — the seam shard execution
        (:func:`repro.experiments.sharding.run_shard`) rides on.  The
        yielded cells keep their *global* indices (a shard's cells
        slot straight into the full sweep's accumulator); unknown or
        duplicate indices are rejected.
        """
        spec_list, policies, soc, payloads = self._build_payloads(
            specs, policies, soc, indices
        )
        if not payloads:
            self.last_mode = "serial"
            return
        yield from self._execute(payloads, spec_list, soc)

    def run_supervised(
        self,
        specs: Sequence[ScenarioLike],
        policies: Optional[Dict[str, PolicyFactory]] = None,
        soc: Optional[SoCConfig] = None,
        indices: Optional[Sequence[int]] = None,
        supervision: Optional[Supervision] = None,
        acc: Optional[SweepResults] = None,
        on_cell=None,
        on_failure=None,
    ) -> SweepResults:
        """Run the sweep under per-cell supervision; never abort it.

        The fault-tolerant executor: every cell gets a bounded retry
        budget with exponential backoff, an optional wall-clock
        timeout, and — when the budget is exhausted — quarantine as a
        structured :class:`~repro.experiments.results.CellFailure`
        instead of an exception unwinding the whole sweep.  Failure
        handling by class:

        - **Cell errors** (the simulation raised): retried from the
          cell's spec after a deterministic backoff.  Retry
          determinism holds because a cell is a pure function of its
          payload — a retried cell yields bit-identical results to a
          first-try success, so supervision never perturbs exports.
        - **Worker crashes** (``BrokenProcessPool``): the pool is
          rebuilt and every in-flight cell re-run.  The crash cannot
          be attributed to one cell, so *all* in-flight cells are
          (conservatively) charged an attempt; innocents simply
          succeed on the re-run.  If the pool cannot be rebuilt at
          all, the remainder drains serially in-process — the old
          broken-pool fallback, now folded into the same retry
          ledger.
        - **Timeouts** (``supervision.cell_timeout``): the hung
          worker's pool is torn down (hung workers never release
          their slot voluntarily), the expired cell is charged an
          attempt, and blameless in-flight cells are re-run without
          charge.  Unenforceable in serial mode, where a cell cannot
          be interrupted.

        Args:
            specs / policies / soc / indices: As :meth:`iter_cells`.
            supervision: The retry/timeout/backoff/fault policy
                (defaults to :class:`Supervision`'s defaults).  Its
                ``fault_plan`` (or the runner's) is installed in
                every worker via the pool initializer, and in this
                process for the in-process-safe fault kinds.
            acc: Accumulator to fold into (for resume: pre-populated
                with previously completed cells); a fresh one is
                built when omitted.
            on_cell / on_failure: Optional callbacks invoked the
                moment each cell result / quarantined failure is
                folded in — the checkpoint-journal seam.

        Returns:
            The accumulator.  ``acc.complete`` means every cell
            succeeded; ``acc.degraded`` means quarantined failures
            remain (``acc.failures()`` lists them, and a resume can
            re-run ``acc.missing_indices()``).
        """
        sup = supervision if supervision is not None else Supervision()
        # The supervision's plan (if any) wins over the runner's for
        # the duration of this run only — a later unsupervised (or
        # differently-supervised) call on the same runner must not
        # inherit it.
        prior_plan = self.fault_plan
        if sup.fault_plan is not None:
            self.fault_plan = sup.fault_plan
        spec_list, policies, soc, payloads = self._build_payloads(
            specs, policies, soc, indices
        )
        if acc is None:
            acc = SweepResults(spec_list, list(policies))
        payloads = [p for p in payloads if not acc.has_cell(p[0])]

        def record_cell(cell: CellResult) -> None:
            acc.add(cell)
            if on_cell is not None:
                on_cell(cell)

        def quarantine(
            payload: _CellPayload, attempts: int, kind: str,
            message: str,
        ) -> None:
            failure = CellFailure(
                index=payload[0],
                spec_index=payload[1],
                label=payload[2].label,
                policy=payload[3],
                seed=payload[5],
                kind=kind,
                attempts=attempts,
                message=message,
            )
            acc.add_failure(failure)
            print(
                f"parallel: quarantined cell {failure.index} "
                f"({failure.label}/{failure.policy}/seed "
                f"{failure.seed}) after {attempts} attempt(s): "
                f"[{kind}] {message}",
                file=sys.stderr,
            )
            if on_failure is not None:
                on_failure(failure)

        installed_parent_plan = False
        if self.fault_plan is not None:
            # In-process activation for the serial path and the
            # serial fallback; crash/hang are worker-only by design.
            faults.install_plan(self.fault_plan, in_worker=False)
            installed_parent_plan = True
        try:
            factories = tuple(
                {id(p[4]): p[4] for p in payloads}.values()
            )
            remaining: List[Tuple[_CellPayload, int]] = [
                (p, 0) for p in payloads
            ]
            self.last_mode = "serial"
            if (
                self.workers > 1
                and len(payloads) > 1
                and _picklable(factories)
            ):
                remaining = self._supervise_pool(
                    remaining, spec_list, soc, sup,
                    record_cell, quarantine,
                )
            for payload, attempt in remaining:
                self._supervise_serial(
                    payload, attempt, sup, record_cell, quarantine
                )
        finally:
            self.fault_plan = prior_plan
            if installed_parent_plan:
                faults.clear_plan()
        cells = acc.cells()
        self.last_sweep = acc
        self.last_cells = cells
        self.last_timings = [
            CellTiming(
                label=c.label, policy=c.policy, seed=c.seed,
                seconds=c.seconds,
            )
            for c in cells
        ]
        return acc

    def _supervise_serial(
        self,
        payload: _CellPayload,
        attempt: int,
        sup: Supervision,
        record_cell,
        quarantine,
    ) -> None:
        """Run one cell in-process under the retry ledger.

        Timeouts are unenforceable here (no process boundary to kill
        across); error retries and quarantine work identically to the
        pool path.
        """
        while True:
            try:
                cell = _run_cell(payload, attempt)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                if attempt >= sup.max_retries:
                    quarantine(
                        payload, attempt + 1, "error",
                        f"{type(exc).__name__}: {exc}",
                    )
                    return
                delay = sup.backoff(attempt)
                if delay:
                    time.sleep(delay)
                attempt += 1
            else:
                record_cell(cell)
                return

    def _supervise_pool(
        self,
        work: List[Tuple[_CellPayload, int]],
        spec_list: Sequence[ScenarioSpec],
        soc: SoCConfig,
        sup: Supervision,
        record_cell,
        quarantine,
    ) -> List[Tuple[_CellPayload, int]]:
        """Pool half of :meth:`run_supervised`.

        Cells are submitted individually (supervision granularity is
        one cell, unlike the throughput path's chunks) through a
        bounded in-flight window of one cell per worker — a submitted
        cell therefore starts promptly, which is what makes a
        submission-stamped wall-clock deadline a faithful *cell*
        timeout.

        Returns the work that still needs the serial fallback (empty
        unless the pool could not be (re)built); each entry keeps its
        retry-ledger attempt count.
        """
        from collections import deque

        queue = deque(work)
        pool = self._pool
        owns_pool = pool is None
        if pool is not None:
            workers = min(self._pool_workers, max(len(queue), 1))
        else:
            workers = min(self.workers, max(len(queue), 1), 61)
        if owns_pool:
            try:
                pool = self._make_pool(workers, spec_list, soc)
            except OSError as exc:
                print(
                    f"parallel: process pool unavailable "
                    f"({type(exc).__name__}: {exc}); supervising "
                    f"{len(queue)} cells serially",
                    file=sys.stderr,
                )
                return list(queue)
        self.last_mode = "parallel"
        #: future -> (payload, attempt, deadline or None)
        inflight: Dict[object, Tuple[_CellPayload, int, Optional[float]]] = {}

        def requeue_or_quarantine(
            payload: _CellPayload, attempt: int, kind: str,
            message: str,
        ) -> None:
            if attempt >= sup.max_retries:
                quarantine(payload, attempt + 1, kind, message)
            else:
                queue.append((payload, attempt + 1))

        def replace_pool(reason: str):
            """Discard the (broken or hung) pool; build a successor."""
            nonlocal owns_pool
            self._terminate_pool(pool)
            if not owns_pool:
                # The persistent pool is a corpse; forget it so later
                # runs start fresh rather than resubmitting to it.
                self._pool = None
                self._pool_workers = 0
                owns_pool = True
            try:
                return self._make_pool(workers, spec_list, soc)
            except OSError as exc:
                print(
                    f"parallel: could not rebuild pool after {reason} "
                    f"({type(exc).__name__}: {exc}); draining "
                    f"remaining cells serially",
                    file=sys.stderr,
                )
                return None

        try:
            while queue or inflight:
                while queue and len(inflight) < workers:
                    payload, attempt = queue.popleft()
                    deadline = (
                        time.monotonic() + sup.cell_timeout
                        if sup.cell_timeout is not None else None
                    )
                    future = pool.submit(
                        _run_cell_supervised, payload, attempt
                    )
                    inflight[future] = (payload, attempt, deadline)
                deadlines = [
                    d for (_, _, d) in inflight.values() if d is not None
                ]
                wait_timeout = (
                    max(0.0, min(deadlines) - time.monotonic())
                    if deadlines else None
                )
                done, _ = wait(
                    set(inflight), timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                pool_broken = False
                broken_message = ""
                retry_attempts: List[int] = []
                for future in done:
                    payload, attempt, _deadline = inflight.pop(future)
                    try:
                        cell = future.result()
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        broken_message = f"{type(exc).__name__}: {exc}"
                        requeue_or_quarantine(
                            payload, attempt, "crash", broken_message
                        )
                        retry_attempts.append(attempt)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        if attempt >= sup.max_retries:
                            quarantine(
                                payload, attempt + 1, "error",
                                f"{type(exc).__name__}: {exc}",
                            )
                        else:
                            delay = sup.backoff(attempt)
                            if delay:
                                time.sleep(delay)
                            queue.append((payload, attempt + 1))
                    else:
                        record_cell(cell)
                if pool_broken:
                    # Every other in-flight future is doomed with the
                    # same BrokenProcessPool; charge them all one
                    # attempt (the crasher is unattributable) and
                    # restart on a fresh pool.
                    for payload, attempt, _deadline in inflight.values():
                        requeue_or_quarantine(
                            payload, attempt, "crash", broken_message
                        )
                        retry_attempts.append(attempt)
                    inflight.clear()
                    if retry_attempts:
                        delay = sup.backoff(min(retry_attempts))
                        if delay:
                            time.sleep(delay)
                    pool = replace_pool("worker crash")
                    if pool is None:
                        return list(queue)
                    continue
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, _, d) in inflight.items()
                    if d is not None and now >= d
                ]
                if expired:
                    # A hung worker never yields its slot; kill the
                    # whole pool.  Only the expired cells are charged
                    # an attempt — blameless in-flight cells re-run
                    # at their current count.
                    for future in expired:
                        payload, attempt, _deadline = inflight.pop(
                            future
                        )
                        requeue_or_quarantine(
                            payload, attempt, "timeout",
                            f"cell exceeded the {sup.cell_timeout}s "
                            f"wall-clock timeout",
                        )
                    for payload, attempt, _deadline in inflight.values():
                        queue.append((payload, attempt))
                    inflight.clear()
                    pool = replace_pool("cell timeout")
                    if pool is None:
                        return list(queue)
            return []
        finally:
            if owns_pool and pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            else:
                for future in inflight:
                    future.cancel()

    # ------------------------------------------------------------------

    def _build_payloads(
        self,
        specs: Sequence[ScenarioLike],
        policies: Optional[Dict[str, PolicyFactory]],
        soc: Optional[SoCConfig],
        indices: Optional[Sequence[int]],
    ):
        """Resolve the sweep into indexed cell payloads (shared by the
        streaming and supervised executors)."""
        if policies is None:
            policies = default_policies()
        if soc is None:
            soc = DEFAULT_SOC
        spec_list = resolve_scenarios(specs)
        check_unique_labels(spec_list)
        if self.precompute_dir is not None and spec_list:
            # Parent-side store warm: loads (or builds and saves) the
            # block accounting here, before any payload ships.  This
            # covers the serial fallback and fork-start pools (the
            # children inherit the warmed cache); spawn-start workers
            # re-warm from the same store in their initializer.
            self._warm_from_store(spec_list, soc)
        cells = [
            (spec_idx, spec, name, factory, seed)
            for spec_idx, spec in enumerate(spec_list)
            for name, factory in policies.items()
            for seed in spec.seeds
        ]
        payloads: List[_CellPayload] = [
            (index, spec_idx, spec, name, factory, seed, soc,
             self.solver)
            for index, (spec_idx, spec, name, factory, seed)
            in enumerate(cells)
        ]
        if indices is not None:
            wanted = list(indices)
            bad = sorted(
                {i for i in wanted if not 0 <= i < len(payloads)}
            )
            if bad:
                raise ValueError(
                    f"cell indices {bad} outside sweep of "
                    f"{len(payloads)} cells"
                )
            if len(set(wanted)) != len(wanted):
                raise ValueError("duplicate cell indices requested")
            chosen = set(wanted)
            payloads = [p for p in payloads if p[0] in chosen]
        return spec_list, policies, soc, payloads

    def _warm_from_store(
        self,
        spec_list: Sequence[ScenarioSpec],
        soc: SoCConfig,
    ) -> None:
        """Warm the parent's cost cache from ``precompute_dir`` (and
        save anything it had to build back), once per distinct
        (model set, SoC) this runner sees."""
        from repro.core.latency import warm_network_cost_cache
        from repro.models.zoo import build_model

        names = _spec_model_names(spec_list)
        if (names, soc) in self._precompute_warmed:
            return
        warm_network_cost_cache(
            [build_model(name) for name in names], soc,
            store=self.precompute_dir,
        )
        self._precompute_warmed.add((names, soc))

    # ------------------------------------------------------------------

    def _execute(
        self,
        payloads: List[_CellPayload],
        spec_list: Sequence[ScenarioSpec],
        soc: SoCConfig,
    ) -> Iterator[CellResult]:
        """Stream the cells, preferring the pool, degrading to serial."""
        # Only the policy factories can realistically fail to pickle
        # (specs and SoCs are frozen dataclasses of primitives), so
        # probe the distinct factories instead of every payload —
        # deduplicated by identity, since a factory need not be
        # hashable to be a valid callable.
        factories = tuple(
            {id(p[4]): p[4] for p in payloads}.values()
        )
        remaining = payloads
        if (
            self.workers > 1
            and len(payloads) > 1
            and _picklable(factories)
        ):
            done: Set[int] = set()
            try:
                for cell in self._stream_pool(payloads, spec_list, soc):
                    done.add(cell.index)
                    yield cell
                self.last_mode = "parallel"
                return
            except (OSError, BrokenProcessPool) as exc:
                # Pool could not start or died (sandboxes, restricted
                # environments, spawn-bootstrap child crashes); the
                # cells are identical either way, only slower.  Errors
                # raised *by a worker's simulation* (SimulationError
                # and friends) propagate — rerunning serially would
                # only hit them again.  Cells that already streamed
                # out stay streamed; only the remainder reruns here.
                # A broken *persistent* pool is discarded so the next
                # run can start a fresh one instead of resubmitting to
                # the corpse forever.
                self.close_pool()
                remaining = [p for p in payloads if p[0] not in done]
                print(
                    f"parallel: process pool unavailable "
                    f"({type(exc).__name__}: {exc}); running "
                    f"{len(remaining)} cells serially",
                    file=sys.stderr,
                )
        self.last_mode = "serial"
        for payload in remaining:
            yield _run_cell(payload)

    def _stream_pool(
        self,
        payloads: List[_CellPayload],
        spec_list: Sequence[ScenarioSpec],
        soc: SoCConfig,
    ) -> Iterator[CellResult]:
        # 61 is ProcessPoolExecutor's hard ceiling on Windows; capping
        # everywhere keeps auto-sized runs from crashing there.
        pool = self._pool
        if pool is not None:
            workers = min(self._pool_workers, len(payloads))
        else:
            workers = min(self.workers, len(payloads), 61)
        if self.chunk_size is not None:
            chunk = self.chunk_size
        else:
            chunk = max(1, len(payloads) // (workers * 4))
        chunks = [
            payloads[i:i + chunk]
            for i in range(0, len(payloads), chunk)
        ]
        owns_pool = pool is None
        if owns_pool:
            pool = self._make_pool(workers, spec_list, soc)
        pending = set()
        try:
            pending = {pool.submit(_run_cell_chunk, c) for c in chunks}
            while pending:
                finished, pending = wait(
                    pending, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    yield from future.result()
        finally:
            if owns_pool:
                pool.shutdown(wait=True, cancel_futures=True)
            else:
                # A caller abandoning the stream mid-sweep (breaking
                # out of iter_cells) must not leave a persistent pool
                # grinding through discarded chunks; cancel whatever
                # has not started (in-flight chunks still finish).
                # repro-lint: allow[D103] -- cancellation is order-insensitive; no output depends on iteration order
                for future in pending:
                    future.cancel()
