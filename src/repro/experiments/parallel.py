"""Parallel experiment executor: fan the evaluation matrix over processes.

The paper's evaluation is a matrix of independent cells — one
``(scenario, policy, seed)`` triple per simulation — and every cell is
a pure function of its inputs (the workload generator reseeds from the
cell's seed, the engine is exactly deterministic).  That makes the
harness embarrassingly parallel, and this module exploits it with a
:class:`concurrent.futures.ProcessPoolExecutor`.

Streaming model
---------------

:meth:`ParallelRunner.iter_cells` flattens ``specs x policies x
seeds`` into indexed cell payloads, ships them to worker processes in
chunks, and **yields one** :class:`~repro.experiments.results.
CellResult` **per completed cell as its future resolves** — no barrier
across the sweep.  Completion order is nondeterministic in pool mode;
every cell carries its global submission index, and
:class:`~repro.experiments.results.SweepResults` folds the stream back
into the deterministic ``{label: {policy: ScenarioResult}}`` matrix.
:meth:`ParallelRunner.run_matrix` is exactly that composition, so it
stays drop-in interchangeable and numerically identical with the
serial :func:`repro.experiments.runner.run_matrix`.

Warm workers
------------

Every worker process is started with an initializer that pre-warms the
process-global network-cost cache and the per-block predict memos for
the models of the sweep (:func:`repro.core.latency.
warm_network_cost_cache`).  Fork-start hosts inherit the parent's warm
caches anyway; on spawn-start hosts the initializer is what keeps each
cell from paying the cold-start that PR 1's review flagged.  Each
:class:`CellResult` carries cache hit/miss deltas, so warmth is
observable: a warm worker's cells report zero ``cost_cache_misses``.

For timing-sensitive callers, :meth:`ParallelRunner.start_pool` makes
the pool persistent and forces every worker to spawn (and warm) *now*;
subsequent :meth:`run_matrix` / :meth:`iter_cells` calls reuse it —
``scripts/bench_perf.py`` warms the pool before its timed leg this
way.  :meth:`close_pool` (or using the runner as a context manager)
releases it.

Pickling constraints
--------------------

Everything crossing the process boundary must pickle: the
:class:`ScenarioSpec`, the :class:`SoCConfig` and each policy *factory*
(the class itself, not an instance).  The four built-in policies are
top-level classes and pickle fine; a lambda or closure factory does
not, and the runner detects this up front and **falls back to serial
in-process execution** (same cell code, same results) rather than
failing.  The fallback also engages for ``workers=1``, single-cell
matrices, sandboxes where process pools cannot start, and pools that
break mid-sweep (already-yielded cells are kept; only the remainder
reruns serially).

Reading ``BENCH_perf.json``
---------------------------

``scripts/bench_perf.py`` times a fixed reference matrix through both
paths and writes ``BENCH_perf.json``: ``serial.seconds`` vs
``parallel.seconds`` (and their ratio, ``speedup``) measure this
module; ``engine.events_per_sec`` and the ``block_time_*`` counters
measure the simulator's incremental hot path; ``identical_metrics``
asserts the two paths agreed bit-for-bit; ``host.start_method`` and
``parallel.cache`` record the worker start method and the aggregated
cache counters the warm-worker path is judged by.  Every future
performance PR should beat the checked-in trajectory.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.config import DEFAULT_SOC, SoCConfig
from repro.experiments.results import (
    DECISION_COUNTER_FIELDS,
    CellResult,
    SweepResults,
)
from repro.experiments.runner import (
    PolicyFactory,
    ScenarioResult,
    ScenarioSpec,
    check_unique_labels,
    default_policies,
    run_cell_detail,
)
from repro.scenarios import ScenarioLike, resolve_scenarios

#: One unit of parallel work: (global cell index, spec index, spec,
#: policy name, policy factory, seed, SoC).  The global index is the
#: deterministic aggregation key; the spec index disambiguates
#: duplicate labels.
_CellPayload = Tuple[
    int, int, ScenarioSpec, str, PolicyFactory, int, SoCConfig
]


@dataclass(frozen=True)
class CellTiming:
    """Wall-clock cost of one (scenario, policy, seed) simulation.

    Attributes:
        label: Scenario label.
        policy: Policy name.
        seed: Workload seed.
        seconds: Wall seconds the cell took inside its worker.
    """

    label: str
    policy: str
    seed: int
    seconds: float


def _run_cell(payload: _CellPayload) -> CellResult:
    """Execute one matrix cell (runs inside a worker process).

    Delegates to :func:`repro.experiments.runner.run_cell_detail` —
    the same recipe the serial path uses — and wraps the summary with
    timing, engine/decision counters
    and cache telemetry (a per-cell delta frame spanning the whole
    cell, generation included, so warm-cache behaviour is observable
    from the parent and concurrent accounting in the same process —
    e.g. the broken-pool serial fallback rerunning cells in the
    parent — cannot double-count).
    """
    from repro.core.latency import track_cache_deltas

    index, spec_idx, spec, policy_name, factory, seed, soc = payload
    t0 = time.perf_counter()
    with track_cache_deltas() as cache_delta:
        summary, sim_result = run_cell_detail(
            spec, policy_name, factory, seed, soc
        )
    seconds = time.perf_counter() - t0
    return CellResult(
        index=index,
        spec_index=spec_idx,
        label=spec.label,
        policy=policy_name,
        seed=seed,
        summary=summary,
        seconds=seconds,
        worker_pid=os.getpid(),
        **cache_delta,
        **{
            name: getattr(sim_result, name)
            for name in DECISION_COUNTER_FIELDS
        },
    )


def _run_cell_chunk(payloads: Sequence[_CellPayload]) -> List[CellResult]:
    """Worker entry point for one submission chunk."""
    return [_run_cell(p) for p in payloads]


def _warm_worker(model_names: Sequence[str], soc: SoCConfig) -> int:
    """Pool initializer: pre-warm this worker's cost/predict caches.

    Runs once per worker process before it takes any cell; idempotent
    (re-running is a pure cache hit), so it doubles as the payload of
    :meth:`ParallelRunner.start_pool`'s spawn-forcing probes.
    """
    from repro.core.latency import warm_network_cost_cache
    from repro.models.zoo import build_model

    return warm_network_cost_cache(
        [build_model(name) for name in model_names], soc
    )


def _warm_probe(
    model_names: Sequence[str],
    soc: SoCConfig,
    barrier=None,
) -> int:
    """Pool task that warms (idempotently) and reports its worker pid.

    ``barrier`` (a manager-proxied ``multiprocessing.Barrier`` sized
    to the worker count) makes the probes a true rendezvous: each
    probe blocks until every worker holds one, so N probes provably
    ran on N *distinct*, fully initialized workers — without it, one
    fast worker could drain every probe while its siblings are still
    cold-starting.  A broken/timed-out barrier (e.g. a worker died)
    degrades to returning anyway rather than wedging the pool.
    """
    _warm_worker(model_names, soc)
    if barrier is not None:
        try:
            barrier.wait(timeout=60)
        except Exception:
            pass
    return os.getpid()


def _spec_model_names(specs: Sequence[ScenarioSpec]) -> Tuple[str, ...]:
    """Distinct zoo model names the sweep's cells will build."""
    from repro.models.zoo import WORKLOAD_SETS

    names: Set[str] = set()
    for spec in specs:
        if spec.model_mix is not None:
            names.update(name for name, _ in spec.model_mix)
        else:
            names.update(WORKLOAD_SETS[spec.workload_set.upper()])
    return tuple(sorted(names))


def matrices_identical(
    a: Dict[str, Dict[str, ScenarioResult]],
    b: Dict[str, Dict[str, ScenarioResult]],
) -> bool:
    """Whether two matrix results carry identical metric summaries.

    The serial and parallel executors must agree bit-for-bit; this is
    the one comparison used by the smoke script, the perf benchmark
    and any caller wanting to assert the equivalence.  Compare a
    single scenario cell by wrapping it: ``{label: cell}``.
    """
    if set(a) != set(b):
        return False
    for label, cell in a.items():
        if set(cell) != set(b[label]):
            return False
        for policy, result in cell.items():
            if result.per_seed != b[label][policy].per_seed:
                return False
    return True


def _picklable(obj: object) -> bool:
    """Whether ``obj`` survives the process boundary."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


class ParallelRunner:
    """Run evaluation matrices across a process pool.

    Attributes:
        workers: Worker process count; ``None`` auto-sizes to the CPU
            count.  ``1`` always runs serially in-process.
        chunk_size: Cells per submission chunk; ``None`` derives a
            chunk that splits the payload across ``4 x workers``
            slices so uneven cells rebalance.  Streaming granularity
            is one chunk: a chunk's cells are yielded together when
            its future completes.
        warm_start: Start every worker with the cache-warming
            initializer (default True; fork hosts inherit warmth
            either way, spawn hosts need it).
        last_timings: Per-cell wall-clock timings of the most recent
            :meth:`run_matrix` call, in submission order (spec, then
            policy, then seed) — not completion order.
        last_cells: The :class:`CellResult` stream of the most recent
            :meth:`run_matrix` call, in submission order.
        last_sweep: The :class:`~repro.experiments.results.
            SweepResults` accumulator of the most recent
            :meth:`run_matrix` call (``None`` before the first) —
            exposes :meth:`~repro.experiments.results.SweepResults.
            cache_stats` and :meth:`~repro.experiments.results.
            SweepResults.worker_pids` for telemetry consumers.
        last_mode: ``"parallel"`` or ``"serial"`` — which path the most
            recent :meth:`run_matrix` / :meth:`iter_cells` call
            actually took (a pool that broke mid-sweep reports
            ``"serial"``, the degraded mode the remainder ran in).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        warm_start: bool = True,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.warm_start = warm_start
        self.last_timings: List[CellTiming] = []
        self.last_cells: List[CellResult] = []
        self.last_sweep: Optional[SweepResults] = None
        self.last_mode: str = "serial"
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0

    # ------------------------------------------------------------------
    # Persistent pool management
    # ------------------------------------------------------------------

    def start_pool(
        self,
        specs: Sequence[ScenarioLike] = (),
        soc: Optional[SoCConfig] = None,
    ) -> List[int]:
        """Start a persistent worker pool and warm it *now*.

        Creates the pool (with the warm initializer covering the
        models of ``specs``), then submits one warm probe per worker,
        rendezvoused on a barrier so every worker process provably
        spawns and builds its caches before this call returns —
        moving cold-start out of whatever the caller times next.
        (Without the rendezvous a fast worker could consume all the
        probes while its siblings are still initializing.)  If the
        barrier machinery itself is unavailable (no manager process
        in this sandbox), the probes still run, just without the
        distinct-worker guarantee.  Subsequent :meth:`run_matrix` /
        :meth:`iter_cells` calls reuse the pool until
        :meth:`close_pool`.

        Returns:
            The distinct worker pids that answered the probes (empty
            if the pool could not start; the runner then degrades to
            per-call pools / serial fallback as usual).
        """
        if self._pool is not None:
            raise RuntimeError("pool already started")
        if self.workers == 1:
            # The executor will run serially in-process; a warm pool
            # would sit idle (and its telemetry would contradict
            # last_mode == "serial").
            return []
        spec_list = resolve_scenarios(specs) if specs else []
        if soc is None:
            soc = DEFAULT_SOC
        workers = min(self.workers, 61)
        pool = None
        manager = None
        try:
            pool = self._make_pool(workers, spec_list, soc)
            model_names = _spec_model_names(spec_list)
            barrier = None
            if workers > 1:
                import multiprocessing

                try:
                    manager = multiprocessing.Manager()
                    barrier = manager.Barrier(workers)
                except Exception:
                    manager = None  # degrade: probes without rendezvous
            probes = [
                pool.submit(_warm_probe, model_names, soc, barrier)
                for _ in range(workers)
            ]
            wait(probes)
            pids = sorted({p.result() for p in probes})
        except (OSError, BrokenProcessPool) as exc:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            print(
                f"parallel: persistent pool unavailable "
                f"({type(exc).__name__}: {exc})",
                file=sys.stderr,
            )
            return []
        finally:
            if manager is not None:
                manager.shutdown()
        self._pool = pool
        self._pool_workers = workers
        return pids

    def close_pool(self) -> None:
        """Shut the persistent pool down (no-op without one)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_pool()

    def _make_pool(
        self,
        workers: int,
        spec_list: Sequence[ScenarioSpec],
        soc: SoCConfig,
    ) -> ProcessPoolExecutor:
        if self.warm_start and spec_list:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_warm_worker,
                initargs=(_spec_model_names(spec_list), soc),
            )
        return ProcessPoolExecutor(max_workers=workers)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run_scenario(
        self,
        spec: ScenarioLike,
        policies: Optional[Dict[str, PolicyFactory]] = None,
        soc: Optional[SoCConfig] = None,
    ) -> Dict[str, ScenarioResult]:
        """Parallel equivalent of :func:`runner.run_scenario`."""
        spec = resolve_scenarios([spec])[0]
        matrix = self.run_matrix([spec], policies, soc)
        return matrix[spec.label]

    def run_matrix(
        self,
        specs: Sequence[ScenarioLike],
        policies: Optional[Dict[str, PolicyFactory]] = None,
        soc: Optional[SoCConfig] = None,
    ) -> Dict[str, Dict[str, ScenarioResult]]:
        """Parallel equivalent of :func:`runner.run_matrix`.

        Streams cells through :meth:`iter_cells` and folds each one
        into a :class:`~repro.experiments.results.SweepResults` the
        moment it completes — per-seed summaries aggregate
        incrementally, there is no end-of-sweep barrier beyond
        exhausting the stream.  Accepts registry names as well as
        specs.  Returns ``{scenario label: {policy: ScenarioResult}}``
        with numerically identical contents to the serial path.
        """
        if policies is None:
            policies = default_policies()
        spec_list = resolve_scenarios(specs)
        acc = SweepResults(spec_list, list(policies))
        for cell in self.iter_cells(spec_list, policies, soc):
            acc.add(cell)
        cells = acc.cells()
        self.last_sweep = acc
        self.last_cells = cells
        self.last_timings = [
            CellTiming(
                label=c.label, policy=c.policy, seed=c.seed,
                seconds=c.seconds,
            )
            for c in cells
        ]
        return acc.matrix()

    def iter_cells(
        self,
        specs: Sequence[ScenarioLike],
        policies: Optional[Dict[str, PolicyFactory]] = None,
        soc: Optional[SoCConfig] = None,
        indices: Optional[Sequence[int]] = None,
    ) -> Iterator[CellResult]:
        """Yield every cell of the sweep as it completes.

        Pool mode yields in completion order (nondeterministic);
        serial mode in submission order.  The *set* of cells is
        deterministic either way, and every cell carries its global
        submission ``index``, so feeding the stream to
        :class:`~repro.experiments.results.SweepResults` yields the
        same aggregate regardless of arrival order.

        ``indices`` restricts execution to a subset of the sweep's
        global cell indices — the seam shard execution
        (:func:`repro.experiments.sharding.run_shard`) rides on.  The
        yielded cells keep their *global* indices (a shard's cells
        slot straight into the full sweep's accumulator); unknown or
        duplicate indices are rejected.
        """
        if policies is None:
            policies = default_policies()
        if soc is None:
            soc = DEFAULT_SOC
        spec_list = resolve_scenarios(specs)
        check_unique_labels(spec_list)
        cells = [
            (spec_idx, spec, name, factory, seed)
            for spec_idx, spec in enumerate(spec_list)
            for name, factory in policies.items()
            for seed in spec.seeds
        ]
        payloads: List[_CellPayload] = [
            (index, spec_idx, spec, name, factory, seed, soc)
            for index, (spec_idx, spec, name, factory, seed)
            in enumerate(cells)
        ]
        if indices is not None:
            wanted = list(indices)
            bad = sorted(
                {i for i in wanted if not 0 <= i < len(payloads)}
            )
            if bad:
                raise ValueError(
                    f"cell indices {bad} outside sweep of "
                    f"{len(payloads)} cells"
                )
            if len(set(wanted)) != len(wanted):
                raise ValueError("duplicate cell indices requested")
            chosen = set(wanted)
            payloads = [p for p in payloads if p[0] in chosen]
            if not payloads:
                self.last_mode = "serial"
                return
        yield from self._execute(payloads, spec_list, soc)

    # ------------------------------------------------------------------

    def _execute(
        self,
        payloads: List[_CellPayload],
        spec_list: Sequence[ScenarioSpec],
        soc: SoCConfig,
    ) -> Iterator[CellResult]:
        """Stream the cells, preferring the pool, degrading to serial."""
        # Only the policy factories can realistically fail to pickle
        # (specs and SoCs are frozen dataclasses of primitives), so
        # probe the distinct factories instead of every payload —
        # deduplicated by identity, since a factory need not be
        # hashable to be a valid callable.
        factories = tuple(
            {id(p[4]): p[4] for p in payloads}.values()
        )
        remaining = payloads
        if (
            self.workers > 1
            and len(payloads) > 1
            and _picklable(factories)
        ):
            done: Set[int] = set()
            try:
                for cell in self._stream_pool(payloads, spec_list, soc):
                    done.add(cell.index)
                    yield cell
                self.last_mode = "parallel"
                return
            except (OSError, BrokenProcessPool) as exc:
                # Pool could not start or died (sandboxes, restricted
                # environments, spawn-bootstrap child crashes); the
                # cells are identical either way, only slower.  Errors
                # raised *by a worker's simulation* (SimulationError
                # and friends) propagate — rerunning serially would
                # only hit them again.  Cells that already streamed
                # out stay streamed; only the remainder reruns here.
                # A broken *persistent* pool is discarded so the next
                # run can start a fresh one instead of resubmitting to
                # the corpse forever.
                self.close_pool()
                remaining = [p for p in payloads if p[0] not in done]
                print(
                    f"parallel: process pool unavailable "
                    f"({type(exc).__name__}: {exc}); running "
                    f"{len(remaining)} cells serially",
                    file=sys.stderr,
                )
        self.last_mode = "serial"
        for payload in remaining:
            yield _run_cell(payload)

    def _stream_pool(
        self,
        payloads: List[_CellPayload],
        spec_list: Sequence[ScenarioSpec],
        soc: SoCConfig,
    ) -> Iterator[CellResult]:
        # 61 is ProcessPoolExecutor's hard ceiling on Windows; capping
        # everywhere keeps auto-sized runs from crashing there.
        pool = self._pool
        if pool is not None:
            workers = min(self._pool_workers, len(payloads))
        else:
            workers = min(self.workers, len(payloads), 61)
        if self.chunk_size is not None:
            chunk = self.chunk_size
        else:
            chunk = max(1, len(payloads) // (workers * 4))
        chunks = [
            payloads[i:i + chunk]
            for i in range(0, len(payloads), chunk)
        ]
        owns_pool = pool is None
        if owns_pool:
            pool = self._make_pool(workers, spec_list, soc)
        pending = set()
        try:
            pending = {pool.submit(_run_cell_chunk, c) for c in chunks}
            while pending:
                finished, pending = wait(
                    pending, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    yield from future.result()
        finally:
            if owns_pool:
                pool.shutdown(wait=True, cancel_futures=True)
            else:
                # A caller abandoning the stream mid-sweep (breaking
                # out of iter_cells) must not leave a persistent pool
                # grinding through discarded chunks; cancel whatever
                # has not started (in-flight chunks still finish).
                for future in pending:
                    future.cancel()
