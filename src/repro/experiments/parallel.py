"""Parallel experiment executor: fan the evaluation matrix over processes.

The paper's evaluation is a matrix of independent cells — one
``(scenario, policy, seed)`` triple per simulation — and every cell is
a pure function of its inputs (the workload generator reseeds from the
cell's seed, the engine is exactly deterministic).  That makes the
harness embarrassingly parallel, and this module exploits it with a
:class:`concurrent.futures.ProcessPoolExecutor`.

Process-pool model
------------------

:class:`ParallelRunner` flattens ``specs x policies x seeds`` into a
list of cell payloads and ships them to worker processes with
``Executor.map`` in chunks (``chunk_size`` cells per pickle round-trip;
the default splits the payload list evenly across workers with a small
oversubscription factor so stragglers rebalance).  Each worker rebuilds
the scenario environment — memory hierarchy, QoS model, workload
generator — from the payload, regenerates the cell's task stream from
its seed, runs the simulation and returns the
:class:`~repro.metrics.MetricsSummary` plus the cell's wall-clock
seconds.  Results are reassembled into exactly the mapping the serial
:func:`repro.experiments.runner.run_matrix` produces, with per-seed
summaries in spec order, so the two paths are drop-in interchangeable
and numerically identical.

Pickling constraints
--------------------

Everything crossing the process boundary must pickle: the
:class:`ScenarioSpec`, the :class:`SoCConfig` and each policy *factory*
(the class itself, not an instance).  The four built-in policies are
top-level classes and pickle fine; a lambda or closure factory does
not, and the runner detects this up front and **falls back to serial
in-process execution** (same cell code, same results) rather than
failing.  The fallback also engages for ``workers=1``, single-cell
matrices, and sandboxes where process pools cannot start.

Per-cell worker state is cold: each forked/spawned worker re-derives
the (deterministic) network block costs on first use, so the global
``_NETWORK_COST_CACHE`` warms independently per process.  See
:func:`repro.core.latency.clear_network_cost_cache` for tests that
want explicit cold starts.

Reading ``BENCH_perf.json``
---------------------------

``scripts/bench_perf.py`` times a fixed reference matrix through both
paths and writes ``BENCH_perf.json``: ``serial.seconds`` vs
``parallel.seconds`` (and their ratio, ``speedup``) measure this
module; ``engine.events_per_sec`` and the ``block_time_*`` counters
measure the simulator's incremental hot path; ``identical_metrics``
asserts the two paths agreed bit-for-bit.  Every future performance PR
should beat the checked-in trajectory.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_SOC, SoCConfig
from repro.experiments.runner import (
    PolicyFactory,
    ScenarioResult,
    ScenarioSpec,
    check_unique_labels,
    default_policies,
    run_cell,
)
from repro.metrics import MetricsSummary
from repro.scenarios import ScenarioLike, resolve_scenarios

#: One unit of parallel work: (spec index, spec, policy name, policy
#: factory, seed, SoC).  The spec index disambiguates duplicate labels.
_CellPayload = Tuple[int, ScenarioSpec, str, PolicyFactory, int, SoCConfig]

#: What a worker returns: (spec index, policy name, seed, summary,
#: wall seconds spent on the cell).
_CellOutcome = Tuple[int, str, int, MetricsSummary, float]


@dataclass(frozen=True)
class CellTiming:
    """Wall-clock cost of one (scenario, policy, seed) simulation.

    Attributes:
        label: Scenario label.
        policy: Policy name.
        seed: Workload seed.
        seconds: Wall seconds the cell took inside its worker.
    """

    label: str
    policy: str
    seed: int
    seconds: float


def _run_cell(payload: _CellPayload) -> _CellOutcome:
    """Execute one matrix cell (runs inside a worker process).

    Delegates to :func:`repro.experiments.runner.run_cell` — the same
    recipe the serial path uses — and adds the wall-clock timing.
    """
    spec_idx, spec, policy_name, factory, seed, soc = payload
    t0 = time.perf_counter()
    summary = run_cell(spec, policy_name, factory, seed, soc)
    return spec_idx, policy_name, seed, summary, time.perf_counter() - t0


def matrices_identical(
    a: Dict[str, Dict[str, ScenarioResult]],
    b: Dict[str, Dict[str, ScenarioResult]],
) -> bool:
    """Whether two matrix results carry identical metric summaries.

    The serial and parallel executors must agree bit-for-bit; this is
    the one comparison used by the smoke script, the perf benchmark
    and any caller wanting to assert the equivalence.  Compare a
    single scenario cell by wrapping it: ``{label: cell}``.
    """
    if set(a) != set(b):
        return False
    for label, cell in a.items():
        if set(cell) != set(b[label]):
            return False
        for policy, result in cell.items():
            if result.per_seed != b[label][policy].per_seed:
                return False
    return True


def _picklable(obj: object) -> bool:
    """Whether ``obj`` survives the process boundary."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


class ParallelRunner:
    """Run evaluation matrices across a process pool.

    Attributes:
        workers: Worker process count; ``None`` auto-sizes to the CPU
            count.  ``1`` always runs serially in-process.
        chunk_size: Cells per ``Executor.map`` chunk; ``None`` derives
            a chunk that splits the payload across ``4 x workers``
            slices so uneven cells rebalance.
        last_timings: Per-cell wall-clock timings of the most recent
            :meth:`run_matrix` call, in submission order (spec, then
            policy, then seed) — not completion order.
        last_mode: ``"parallel"`` or ``"serial"`` — which path the most
            recent :meth:`run_matrix` call actually took.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.last_timings: List[CellTiming] = []
        self.last_mode: str = "serial"

    # ------------------------------------------------------------------

    def run_scenario(
        self,
        spec: ScenarioLike,
        policies: Optional[Dict[str, PolicyFactory]] = None,
        soc: Optional[SoCConfig] = None,
    ) -> Dict[str, ScenarioResult]:
        """Parallel equivalent of :func:`runner.run_scenario`."""
        spec = resolve_scenarios([spec])[0]
        matrix = self.run_matrix([spec], policies, soc)
        return matrix[spec.label]

    def run_matrix(
        self,
        specs: Sequence[ScenarioLike],
        policies: Optional[Dict[str, PolicyFactory]] = None,
        soc: Optional[SoCConfig] = None,
    ) -> Dict[str, Dict[str, ScenarioResult]]:
        """Parallel equivalent of :func:`runner.run_matrix`.

        Accepts registry names as well as specs (resolved before the
        fan-out; specs are frozen dataclasses of primitives, so cells
        built from registry scenarios stay picklable).  Returns
        ``{scenario label: {policy: ScenarioResult}}`` with numerically
        identical contents to the serial path.
        """
        if policies is None:
            policies = default_policies()
        if soc is None:
            soc = DEFAULT_SOC
        spec_list = resolve_scenarios(specs)
        check_unique_labels(spec_list)
        payloads: List[_CellPayload] = [
            (i, spec, name, factory, seed, soc)
            for i, spec in enumerate(spec_list)
            for name, factory in policies.items()
            for seed in spec.seeds
        ]
        outcomes = self._execute(payloads)

        by_cell: Dict[Tuple[int, str], Dict[int, MetricsSummary]] = {}
        timings: List[CellTiming] = []
        for spec_idx, name, seed, summary, seconds in outcomes:
            by_cell.setdefault((spec_idx, name), {})[seed] = summary
            timings.append(
                CellTiming(
                    label=spec_list[spec_idx].label,
                    policy=name,
                    seed=seed,
                    seconds=seconds,
                )
            )
        matrix: Dict[str, Dict[str, ScenarioResult]] = {}
        for i, spec in enumerate(spec_list):
            cell = {}
            for name in policies:
                per_seed = tuple(
                    by_cell[(i, name)][seed] for seed in spec.seeds
                )
                cell[name] = ScenarioResult(
                    policy=name, spec=spec, per_seed=per_seed
                )
            matrix[spec.label] = cell
        self.last_timings = timings
        return matrix

    # ------------------------------------------------------------------

    def _execute(
        self, payloads: List[_CellPayload]
    ) -> List[_CellOutcome]:
        """Run the cells, preferring the pool, degrading to serial."""
        # Only the policy factories can realistically fail to pickle
        # (specs and SoCs are frozen dataclasses of primitives), so
        # probe the distinct factories instead of every payload —
        # deduplicated by identity, since a factory need not be
        # hashable to be a valid callable.
        factories = tuple(
            {id(p[3]): p[3] for p in payloads}.values()
        )
        if (
            self.workers > 1
            and len(payloads) > 1
            and _picklable(factories)
        ):
            try:
                return self._execute_pool(payloads)
            except (OSError, BrokenProcessPool) as exc:
                # Pool could not start or died (sandboxes, restricted
                # environments, spawn-bootstrap child crashes); the
                # cells are identical either way, only slower.  Errors
                # raised *by a worker's simulation* (SimulationError
                # and friends) propagate — rerunning serially would
                # only hit them again.
                print(
                    f"parallel: process pool unavailable "
                    f"({type(exc).__name__}: {exc}); running "
                    f"{len(payloads)} cells serially",
                    file=sys.stderr,
                )
        self.last_mode = "serial"
        return [_run_cell(p) for p in payloads]

    def _execute_pool(
        self, payloads: List[_CellPayload]
    ) -> List[_CellOutcome]:
        # 61 is ProcessPoolExecutor's hard ceiling on Windows; capping
        # everywhere keeps auto-sized runs from crashing there.
        workers = min(self.workers, len(payloads), 61)
        if self.chunk_size is not None:
            chunk = self.chunk_size
        else:
            chunk = max(1, len(payloads) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(_run_cell, payloads, chunksize=chunk)
            )
        self.last_mode = "parallel"
        return outcomes
