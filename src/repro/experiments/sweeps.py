"""SoC-configuration sensitivity sweeps (artifact appendix §F).

The paper's artifact lets users rebuild the SoC with different
scratchpad/L2 sizes and rerun the evaluation.  These sweeps reproduce
that customization path on the analytical substrate: vary one Table II
parameter at a time and report how the MoCA-vs-static SLA gap responds.

Expected trends (the ablation benches assert them):

- **DRAM bandwidth**: more bandwidth means less contention, so MoCA's
  advantage shrinks as the channel fattens;
- **L2 capacity**: a larger cache keeps activations resident, cutting
  DRAM traffic and, with it, the benefit of regulation;
- **tile count**: more tiles raise the number of co-runners the
  scheduler can balance, growing MoCA's scheduling headroom.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.baselines.static_partition import StaticPartitionPolicy
from repro.config import DEFAULT_SOC, MIB, SoCConfig
from repro.core.policy import MoCAPolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.metrics import summarize
from repro.models.zoo import workload_set
from repro.sim.engine import run_simulation
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


@dataclass(frozen=True)
class SweepPoint:
    """One point of a configuration sweep.

    Attributes:
        label: Human-readable parameter value.
        moca_sla: MoCA's SLA satisfaction rate.
        static_sla: Static baseline's SLA satisfaction rate.
    """

    label: str
    moca_sla: float
    static_sla: float

    @property
    def advantage(self) -> float:
        """MoCA's SLA ratio over static (>1 means MoCA wins)."""
        if self.static_sla <= 0:
            return float("inf")
        return self.moca_sla / self.static_sla


def _evaluate(soc: SoCConfig, num_tasks: int, seeds: Sequence[int],
              workload: str = "C") -> Tuple[float, float]:
    mem = MemoryHierarchy.from_soc(soc)
    gen = WorkloadGenerator(soc, workload_set(workload), mem,
                            QosModel(soc, slack_factor=2.0))
    moca_rates, static_rates = [], []
    for seed in seeds:
        tasks = gen.generate(WorkloadConfig(
            num_tasks=num_tasks, qos_level=QosLevel.HARD, load_factor=0.7,
            seed=seed,
        ))
        moca = run_simulation(soc, tasks, MoCAPolicy(), mem=mem)
        static = run_simulation(soc, tasks, StaticPartitionPolicy(), mem=mem)
        moca_rates.append(summarize("moca", moca.results).sla_rate)
        static_rates.append(summarize("static", static.results).sla_rate)
    n = len(seeds)
    return sum(moca_rates) / n, sum(static_rates) / n


def _sweep(
    values: Sequence,
    mutate: Callable[[SoCConfig, object], SoCConfig],
    fmt: Callable[[object], str],
    num_tasks: int,
    seeds: Sequence[int],
) -> List[SweepPoint]:
    points = []
    for value in values:
        soc = mutate(DEFAULT_SOC, value)
        moca, static = _evaluate(soc, num_tasks, seeds)
        points.append(SweepPoint(label=fmt(value), moca_sla=moca,
                                 static_sla=static))
    return points


def sweep_dram_bandwidth(
    values: Sequence[float] = (8.0, 16.0, 32.0),
    num_tasks: int = 80,
    seeds: Sequence[int] = (1, 2),
) -> List[SweepPoint]:
    """Vary DRAM bandwidth (bytes/cycle; Table II default 16)."""
    return _sweep(
        values,
        lambda soc, v: dataclasses.replace(
            soc, dram_bandwidth_bytes_per_cycle=v
        ),
        lambda v: f"{v:.0f} B/cyc",
        num_tasks, seeds,
    )


def sweep_l2_capacity(
    values: Sequence[int] = (1 * MIB, 2 * MIB, 8 * MIB),
    num_tasks: int = 80,
    seeds: Sequence[int] = (1, 2),
) -> List[SweepPoint]:
    """Vary shared L2 capacity (Table II default 2 MiB)."""
    return _sweep(
        values,
        lambda soc, v: dataclasses.replace(soc, l2_bytes=v),
        lambda v: f"{v // MIB} MiB",
        num_tasks, seeds,
    )


def sweep_num_tiles(
    values: Sequence[int] = (4, 8, 16),
    num_tasks: int = 80,
    seeds: Sequence[int] = (1, 2),
) -> List[SweepPoint]:
    """Vary the accelerator tile count (Table II default 8)."""
    return _sweep(
        values,
        lambda soc, v: soc.with_tiles(v),
        lambda v: f"{v} tiles",
        num_tasks, seeds,
    )


def format_sweep(title: str, points: Sequence[SweepPoint]) -> str:
    """Render a sweep as aligned text."""
    lines = [
        title,
        f"{'value':<12s}{'moca SLA':>10s}{'static SLA':>12s}"
        f"{'advantage':>11s}",
    ]
    for p in points:
        lines.append(
            f"{p.label:<12s}{p.moca_sla:>10.3f}{p.static_sla:>12.3f}"
            f"{p.advantage:>10.2f}x"
        )
    return "\n".join(lines)
