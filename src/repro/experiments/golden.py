"""Golden fingerprints of the reference evaluation matrix.

The 36 reference (scenario, policy) cells — nine scenarios times four
policies — are the paper's headline results; any refactor that
silently perturbs simulator outputs must fail loudly.  This module fingerprints each cell's full metric bundle
(every float at full ``repr`` precision, so the check is bit-exact)
and the tier-1 test ``tests/test_golden.py`` compares the fingerprints
against ``tests/goldens/reference_matrix.json``.

After an *intentional* output change, re-bless the goldens with::

    PYTHONPATH=src python scripts/bless_goldens.py
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Tuple

from repro.metrics import MetricsSummary

#: Reduced scenario size used by the golden file: big enough that every
#: policy mechanism (preemption, repartitioning, throttling) fires,
#: small enough for tier-1.
GOLDEN_NUM_TASKS = 30
GOLDEN_SEEDS: Tuple[int, ...] = (1,)


def reference_specs(
    num_tasks: int = GOLDEN_NUM_TASKS,
    seeds: Tuple[int, ...] = GOLDEN_SEEDS,
):
    """The nine registry reference scenarios at golden size."""
    from repro.experiments.runner import standard_matrix

    return standard_matrix(num_tasks=num_tasks, seeds=tuple(seeds))


def summary_fingerprint(summary: MetricsSummary) -> str:
    """Bit-exact digest of one seed's metric bundle.

    Iterates ``dataclasses.fields`` so metrics added to
    :class:`MetricsSummary` later are pinned automatically instead of
    silently escaping the golden check.
    """
    values = []
    for field in dataclasses.fields(MetricsSummary):
        value = getattr(summary, field.name)
        if isinstance(value, dict):
            value = sorted(value.items())
        values.append((field.name, value))
    blob = repr(tuple(values))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def matrix_fingerprint(matrix) -> Dict[str, str]:
    """Digest every (scenario, policy) cell of a matrix.

    Returns:
        ``{"<label>/<policy>": digest}`` where the digest chains the
        per-seed summary fingerprints in seed order.
    """
    cells: Dict[str, str] = {}
    for label, cell in matrix.items():
        for policy, result in cell.items():
            chained = "".join(
                summary_fingerprint(s) for s in result.per_seed
            )
            cells[f"{label}/{policy}"] = hashlib.sha256(
                chained.encode()
            ).hexdigest()[:16]
    return cells


def compute_reference_fingerprints(
    num_tasks: int = GOLDEN_NUM_TASKS,
    seeds: Tuple[int, ...] = GOLDEN_SEEDS,
) -> Dict[str, str]:
    """Run the reference matrix and fingerprint every cell."""
    from repro.experiments.runner import run_matrix

    return matrix_fingerprint(
        run_matrix(reference_specs(num_tasks, seeds))
    )
