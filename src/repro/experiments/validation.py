"""Latency-model validation (Section III-C's 10 % claim).

The paper validates Algorithm 1 against FireSim RTL measurements and
reports prediction error within 10 % across networks and layers.  Our
measured substrate is the fluid simulator, which executes at *layer
block* granularity with block-level compute/memory overlap — a
different discretization from the per-layer estimator.  The validation
therefore checks that the per-layer analytical prediction agrees with
the simulated block-granular execution across every network and tile
allocation, the same cross-granularity consistency the paper's
validation establishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import DEFAULT_SOC, SoCConfig
from repro.core.latency import build_network_cost, estimate_network
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model, model_names
from repro.sim.engine import run_simulation
from repro.sim.job import Task
from repro.sim.policy import Policy


class _FixedTilesPolicy(Policy):
    """Runs the single validation task on a fixed tile count."""

    name = "fixed-tiles"

    def __init__(self, tiles: int) -> None:
        self.tiles = tiles

    def on_event(self, sim) -> None:
        if sim.ready and not sim.running:
            sim.start_job(sim.ready[0], self.tiles)

    def reset(self) -> None:
        """Stateless."""


@dataclass(frozen=True)
class ValidationRow:
    """One (network, tiles) validation point.

    Attributes:
        network: Model name.
        tiles: Tile allocation.
        predicted: Per-layer Algorithm 1 prediction, cycles.
        measured: Fluid-simulated runtime, cycles.
        rel_error: ``|predicted - measured| / measured``.
    """

    network: str
    tiles: int
    predicted: float
    measured: float

    @property
    def rel_error(self) -> float:
        return abs(self.predicted - self.measured) / self.measured


def run_validation(
    soc: Optional[SoCConfig] = None,
    tile_counts: Sequence[int] = (1, 2, 4, 8),
) -> List[ValidationRow]:
    """Validate Algorithm 1 across the zoo and tile allocations."""
    if soc is None:
        soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    rows: List[ValidationRow] = []
    for name in model_names():
        network = build_model(name)
        cost = build_network_cost(network, soc, mem)
        for tiles in tile_counts:
            predicted, _ = estimate_network(
                network, soc, mem, num_tiles=tiles
            )
            task = Task(
                task_id="probe",
                network_name=name,
                cost=cost,
                dispatch_cycle=0.0,
                priority=5,
                qos_target_cycles=1e18,
                isolated_cycles=predicted,
            )
            result = run_simulation(
                soc, [task], _FixedTilesPolicy(tiles), mem=mem
            )
            measured = result.results[0].runtime
            rows.append(
                ValidationRow(
                    network=name,
                    tiles=tiles,
                    predicted=predicted,
                    measured=measured,
                )
            )
    return rows


def summarize_validation(rows: Sequence[ValidationRow]) -> Tuple[float, float]:
    """``(mean_rel_error, max_rel_error)`` over all validation points."""
    if not rows:
        raise ValueError("no validation rows")
    errors = [r.rel_error for r in rows]
    return sum(errors) / len(errors), max(errors)


def format_validation(rows: Sequence[ValidationRow]) -> str:
    """Render the validation table plus the 10 % check."""
    lines = [
        "Latency-model validation (Alg. 1 vs fluid simulation)",
        f"{'network':<12s}{'tiles':>6s}{'predicted':>14s}"
        f"{'measured':>14s}{'err %':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r.network:<12s}{r.tiles:>6d}{r.predicted:>14,.0f}"
            f"{r.measured:>14,.0f}{100 * r.rel_error:>8.2f}"
        )
    mean_err, max_err = summarize_validation(rows)
    lines.append(
        f"mean error {100 * mean_err:.2f}%, max {100 * max_err:.2f}% "
        "(paper: within 10%)"
    )
    return "\n".join(lines)
