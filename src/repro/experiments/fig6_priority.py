"""Figure 6: SLA satisfaction broken down by priority group.

Same runs as Figure 5, reported per priority group (p-Low 0-2,
p-Mid 3-8, p-High 9-11) for each workload set and QoS level.  The
shapes to hold: satisfaction generally rises with priority for every
system; MoCA p-High leads all baselines (paper: up to 4.7x over
Planaria on Workload-A QoS-H, 1.8x over static on Workload-C QoS-H,
9.9x over Prema on Workload-A QoS-M).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.experiments.fig5_sla import Matrix, run_fig5
from repro.experiments.runner import POLICY_ORDER, ScenarioSpec

GROUPS: Tuple[str, ...] = ("p-Low", "p-Mid", "p-High")


def run_fig6(
    num_tasks: int = 250,
    seeds: Tuple[int, ...] = (1, 2, 3),
    soc: Optional[SoCConfig] = None,
    specs: Optional[Sequence[ScenarioSpec]] = None,
) -> Matrix:
    """Figure 6 reuses the Figure 5 matrix (same simulations)."""
    return run_fig5(num_tasks=num_tasks, seeds=seeds, soc=soc, specs=specs)


def group_rates(matrix: Matrix) -> Dict[str, Dict[str, Dict[str, float]]]:
    """``{scenario: {policy: {group: rate}}}`` for all cells."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for label, cell in matrix.items():
        out[label] = {}
        for policy, result in cell.items():
            rates = {}
            for group in GROUPS:
                try:
                    rates[group] = result.sla_group(group)
                except KeyError:
                    continue
            out[label][policy] = rates
    return out


def format_fig6(matrix: Matrix) -> str:
    """Render the per-priority-group breakdown as aligned text."""
    rates = group_rates(matrix)
    lines: List[str] = [
        "Figure 6: SLA satisfaction rate by priority group"
    ]
    header = f"{'scenario':<22s}{'policy':>10s}" + "".join(
        f"{g:>9s}" for g in GROUPS
    )
    lines.append(header)
    for label in rates:
        for policy in POLICY_ORDER:
            if policy not in rates[label]:
                continue
            row = f"{label:<22s}{policy:>10s}"
            for group in GROUPS:
                value = rates[label][policy].get(group)
                row += f"{value:>9.3f}" if value is not None else f"{'-':>9s}"
            lines.append(row)
    return "\n".join(lines)
