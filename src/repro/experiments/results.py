"""First-class sweep results: streaming accumulation and manifests.

The streaming executor (:meth:`repro.experiments.parallel.
ParallelRunner.iter_cells`) yields one :class:`CellResult` per
(scenario, policy, seed) cell *as futures complete* — in whatever
order the workers finish.  This module turns that unordered stream
back into the deterministic structures the rest of the harness
consumes:

- :class:`SweepResults` accumulates cells incrementally (no barrier:
  each cell is folded in the moment it arrives) and, once complete,
  assembles exactly the ``{label: {policy: ScenarioResult}}`` matrix
  the serial :func:`repro.experiments.runner.run_matrix` produces —
  same spec order, same policy order, same per-seed tuples, so the
  streaming path is bit-identical to serial by construction.
- :func:`cell_manifest` renders the full cell list of a sweep as a
  JSON-serialisable document (specs included via
  :meth:`ScenarioSpec.to_dict`).  Every cell entry carries the global
  submission index, so the manifest is the seam for future
  cross-machine sharding: a remote worker needs nothing but its slice
  of this document to run its cells and return indexed
  :class:`CellResult`-shaped rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.latency import CACHE_COUNTER_FIELDS
from repro.metrics import MetricsSummary
from repro.scenarios import ScenarioLike, ScenarioSpec, resolve_scenarios

__all__ = [
    "CACHE_COUNTER_FIELDS",
    "DECISION_COUNTER_FIELDS",
    "CellFailure",
    "CellResult",
    "SweepResults",
    "cell_from_dict",
    "cell_manifest",
    "cell_to_dict",
    "failure_from_dict",
    "failure_to_dict",
]

#: Engine/decision telemetry threaded from each cell's
#: :class:`~repro.sim.engine.SimResult` into its :class:`CellResult`
#: (and through the shard-partial serialisation seam).
DECISION_COUNTER_FIELDS = (
    "events",
    "block_time_recomputes",
    "block_time_reuses",
    "decisions",
    "plans_applied",
    "plans_noop",
    "plan_actions",
)


@dataclass(frozen=True)
class CellResult:
    """Outcome of one (scenario, policy, seed) cell of a sweep.

    Attributes:
        index: Global submission index of the cell (spec order, then
            policy order, then seed order) — the deterministic key
            streaming aggregation sorts by.
        spec_index: Index of the cell's scenario in the sweep's spec
            list.
        label: Scenario label.
        policy: Policy name.
        seed: Workload seed.
        summary: The cell's metric bundle.
        seconds: Wall seconds the cell took inside its worker.
        worker_pid: OS pid of the process that ran the cell.
        cost_cache_hits / cost_cache_misses: Network-cost cache probes
            during the cell (generation + simulation); a pre-warmed
            worker runs every cell at zero misses.
        predict_memo_hits / predict_memo_misses: ``BlockCost.predict``
            memo probes during the cell.
        events: Simulation events the cell's engine loop processed.
        block_time_recomputes / block_time_reuses: Full block-time
            solves vs allocation-epoch cache hits — the counters the
            decision-cadence sweep axis is judged by.
        decisions: Times the policy was consulted for a plan.
        plans_applied / plans_noop: Plans that did / did not mutate
            engine state.
        plan_actions: Total mutations the controller applied.
    """

    index: int
    spec_index: int
    label: str
    policy: str
    seed: int
    summary: MetricsSummary
    seconds: float
    worker_pid: int = 0
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0
    predict_memo_hits: int = 0
    predict_memo_misses: int = 0
    events: int = 0
    block_time_recomputes: int = 0
    block_time_reuses: int = 0
    decisions: int = 0
    plans_applied: int = 0
    plans_noop: int = 0
    plan_actions: int = 0


#: The failure classes the supervised executor distinguishes.
FAILURE_KINDS = ("error", "crash", "timeout")


@dataclass(frozen=True)
class CellFailure:
    """Structured record of a cell that exhausted its retry budget.

    The graceful-degradation counterpart of :class:`CellResult`: a
    persistently failing ("poison") cell is quarantined as one of
    these instead of aborting the sweep, keeping the identifying
    coordinates so a resume can re-run exactly this cell from its
    spec.

    Attributes:
        index: Global submission index of the failed cell.
        spec_index: Index of the cell's scenario in the sweep's spec
            list.
        label: Scenario label.
        policy: Policy name.
        seed: Workload seed.
        kind: Failure class — ``"error"`` (the cell raised),
            ``"crash"`` (its worker process died), or ``"timeout"``
            (it exceeded the wall-clock cell timeout).
        attempts: Execution attempts made before quarantine.
        message: Human-readable description of the final failure.
    """

    index: int
    spec_index: int
    label: str
    policy: str
    seed: int
    kind: str
    attempts: int
    message: str

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; choose from "
                f"{', '.join(FAILURE_KINDS)}"
            )
        if self.attempts < 1:
            raise ValueError("a failure records >= 1 attempts")


def failure_to_dict(failure: CellFailure) -> dict:
    """A :class:`CellFailure` as JSON-ready primitives."""
    return {
        "index": failure.index,
        "spec_index": failure.spec_index,
        "label": failure.label,
        "policy": failure.policy,
        "seed": failure.seed,
        "kind": failure.kind,
        "attempts": failure.attempts,
        "message": failure.message,
    }


def failure_from_dict(payload: dict) -> CellFailure:
    """Rebuild a :class:`CellFailure` from :func:`failure_to_dict`."""
    return CellFailure(
        index=payload["index"],
        spec_index=payload["spec_index"],
        label=payload["label"],
        policy=payload["policy"],
        seed=payload["seed"],
        kind=payload["kind"],
        attempts=payload["attempts"],
        message=payload["message"],
    )


class SweepResults:
    """Incremental, completion-order-independent sweep accumulator.

    Construct with the sweep's resolved shape (specs and policy
    names), then :meth:`add` every :class:`CellResult` in *any* order;
    :meth:`matrix` assembles the deterministic serial-identical result
    once all expected cells have arrived.  Duplicate or unexpected
    cells fail loudly — silent double-aggregation would corrupt the
    per-seed tuples.

    Quarantined cells arrive as :class:`CellFailure` records via
    :meth:`add_failure` instead of aborting the sweep; a later
    successful re-run of the same cell (retry determinism: the cell
    is re-run from its spec, so the result is what it always was)
    simply replaces the failure.  :attr:`complete` remains "every
    cell has a *result*" — failures never count toward completion,
    they only explain it; :attr:`degraded` distinguishes "finished
    but quarantined cells remain" from a sweep still missing work.

    Attributes:
        specs: Resolved scenario specs, in sweep order.
        policies: Policy names, in sweep order.
    """

    def __init__(
        self,
        specs: Sequence[ScenarioLike],
        policies: Sequence[str],
    ) -> None:
        from repro.experiments.runner import check_unique_labels

        self.specs: List[ScenarioSpec] = resolve_scenarios(specs)
        check_unique_labels(self.specs)
        self.policies: List[str] = list(policies)
        if not self.policies:
            raise ValueError("need at least one policy")
        #: index -> (spec_index, policy, seed), in submission order.
        self._slots: List[Tuple[int, str, int]] = [
            (spec_idx, policy, seed)
            for spec_idx, spec in enumerate(self.specs)
            for policy in self.policies
            for seed in spec.seeds
        ]
        self._cells: Dict[int, CellResult] = {}
        self._failures: Dict[int, CellFailure] = {}

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def expected(self) -> int:
        """Total cells this sweep comprises."""
        return len(self._slots)

    @property
    def complete(self) -> bool:
        return len(self._cells) == len(self._slots)

    @property
    def degraded(self) -> bool:
        """Whether quarantined failures stand in for missing cells."""
        return not self.complete and bool(self._failures)

    def add(self, cell: CellResult) -> None:
        """Fold one completed cell in (any order, exactly once).

        A successful cell supersedes any quarantined failure recorded
        at the same index — a resumed re-run heals the sweep.
        """
        if not 0 <= cell.index < len(self._slots):
            raise ValueError(
                f"cell index {cell.index} outside sweep of "
                f"{len(self._slots)} cells"
            )
        expected = self._slots[cell.index]
        got = (cell.spec_index, cell.policy, cell.seed)
        if got != expected:
            raise ValueError(
                f"cell {cell.index} is {got}, expected {expected}"
            )
        if cell.index in self._cells:
            raise ValueError(f"duplicate cell {cell.index}")
        self._cells[cell.index] = cell
        self._failures.pop(cell.index, None)

    def add_failure(self, failure: CellFailure) -> None:
        """Record a quarantined cell (validated against the sweep
        shape like :meth:`add`).

        A failure for a cell that already has a successful result is
        discarded (the result wins — e.g. a stale failure record from
        a pre-resume checkpoint).  A repeated failure for the same
        index keeps the latest record.
        """
        if not 0 <= failure.index < len(self._slots):
            raise ValueError(
                f"failure index {failure.index} outside sweep of "
                f"{len(self._slots)} cells"
            )
        expected = self._slots[failure.index]
        got = (failure.spec_index, failure.policy, failure.seed)
        if got != expected:
            raise ValueError(
                f"failure {failure.index} is {got}, expected {expected}"
            )
        if failure.index in self._cells:
            return
        self._failures[failure.index] = failure

    def has_cell(self, index: int) -> bool:
        """Whether a successful result for ``index`` is folded in."""
        return index in self._cells

    def cells(self) -> List[CellResult]:
        """Accumulated cells, sorted back into submission order."""
        return [self._cells[i] for i in sorted(self._cells)]

    def failures(self) -> List[CellFailure]:
        """Quarantined failures, sorted by cell index."""
        return [self._failures[i] for i in sorted(self._failures)]

    def failed_indices(self) -> List[int]:
        """Global indices holding a failure record (and no result)."""
        return sorted(self._failures)

    def missing_indices(self) -> List[int]:
        """Global indices of cells not yet folded in — gap detection
        for the shard merge path, and the re-run list for resume.
        Quarantined cells count as missing (a resume re-runs them)."""
        return [
            i for i in range(len(self._slots)) if i not in self._cells
        ]

    def progress(self) -> Dict[str, int]:
        """Live progress counters (the coordinator's status report):
        how many cells are expected, folded in, quarantined, and
        still missing (quarantined cells also count as missing — a
        resume re-runs them)."""
        return {
            "expected": len(self._slots),
            "completed": len(self._cells),
            "quarantined": len(self._failures),
            "missing": len(self._slots) - len(self._cells),
        }

    @classmethod
    def from_partials(
        cls, partials: Sequence[dict], require_complete: bool = True
    ) -> "SweepResults":
        """Fold shard partial artifacts back into one accumulator.

        ``partials`` are parsed shard documents (see
        :func:`repro.experiments.sharding.run_shard` /
        :func:`~repro.experiments.sharding.partial_from_json`),
        acceptable in any order.  Partials from different manifests
        (by digest), overlapping cells, and — unless
        ``require_complete=False`` — gaps are all rejected loudly;
        the merged accumulator's :meth:`matrix` (and any export built
        from it) is bit-identical to the same sweep run unsharded.
        """
        from repro.experiments.sharding import merge_partials

        return merge_partials(partials, require_complete=require_complete)

    def matrix(self) -> Dict[str, Dict[str, "ScenarioResult"]]:
        """The deterministic ``{label: {policy: ScenarioResult}}``.

        Requires completeness; the assembly iterates specs, policies
        and seeds in sweep order, so the output is independent of the
        order cells were added in and identical to the serial path.
        """
        from repro.experiments.runner import ScenarioResult

        if not self.complete:
            missing = self.missing_indices()
            quarantined = (
                f", {len(self._failures)} of them quarantined failures"
                if self._failures else ""
            )
            raise ValueError(
                f"sweep incomplete: {len(missing)} of "
                f"{len(self._slots)} cells missing "
                f"(first: {missing[:5]}){quarantined}"
            )
        by_slot: Dict[Tuple[int, str], List[MetricsSummary]] = {}
        for index, (spec_idx, policy, _seed) in enumerate(self._slots):
            by_slot.setdefault((spec_idx, policy), []).append(
                self._cells[index].summary
            )
        out: Dict[str, Dict[str, ScenarioResult]] = {}
        for spec_idx, spec in enumerate(self.specs):
            out[spec.label] = {
                policy: ScenarioResult(
                    policy=policy,
                    spec=spec,
                    per_seed=tuple(by_slot[(spec_idx, policy)]),
                )
                for policy in self.policies
            }
        return out

    def cache_stats(self) -> Dict[str, int]:
        """Cache counters summed over every accumulated cell."""
        return {
            name: sum(getattr(c, name) for c in self._cells.values())
            for name in CACHE_COUNTER_FIELDS
        }

    def decision_stats(self) -> Dict[str, int]:
        """Engine/decision counters summed over every accumulated
        cell (see :data:`DECISION_COUNTER_FIELDS`)."""
        return {
            name: sum(getattr(c, name) for c in self._cells.values())
            for name in DECISION_COUNTER_FIELDS
        }

    def worker_pids(self) -> List[int]:
        """Distinct worker pids observed, sorted."""
        return sorted({c.worker_pid for c in self._cells.values()})


def cell_to_dict(cell: CellResult) -> dict:
    """A :class:`CellResult` as JSON-ready primitives.

    The serialisation seam shard partial artifacts use; the metric
    bundle goes through :meth:`MetricsSummary.to_dict`, which
    round-trips floats exactly, so :func:`cell_from_dict` rebuilds a
    cell whose summary compares equal bit-for-bit.
    """
    return {
        "index": cell.index,
        "spec_index": cell.spec_index,
        "label": cell.label,
        "policy": cell.policy,
        "seed": cell.seed,
        "summary": cell.summary.to_dict(),
        "seconds": cell.seconds,
        "worker_pid": cell.worker_pid,
        **{name: getattr(cell, name) for name in CACHE_COUNTER_FIELDS},
        **{
            name: getattr(cell, name)
            for name in DECISION_COUNTER_FIELDS
        },
    }


def cell_from_dict(payload: dict) -> CellResult:
    """Rebuild a :class:`CellResult` from :func:`cell_to_dict`."""
    return CellResult(
        index=payload["index"],
        spec_index=payload["spec_index"],
        label=payload["label"],
        policy=payload["policy"],
        seed=payload["seed"],
        summary=MetricsSummary.from_dict(payload["summary"]),
        seconds=payload["seconds"],
        worker_pid=payload.get("worker_pid", 0),
        **{
            name: payload.get(name, 0) for name in CACHE_COUNTER_FIELDS
        },
        **{
            name: payload.get(name, 0)
            for name in DECISION_COUNTER_FIELDS
        },
    )


def cell_manifest(
    specs: Sequence[ScenarioLike],
    policies: Optional[Sequence[str]] = None,
) -> dict:
    """Serialisable manifest of every cell a sweep comprises.

    The returned document is pure JSON material: the resolved specs
    (via :meth:`ScenarioSpec.to_dict`) plus one entry per cell with
    its global index — the same (spec, policy, seed) flattening order
    the executor submits in.  A future cross-machine shard needs only
    a slice of ``cells`` plus the referenced scenario entries.
    """
    if policies is None:
        from repro.experiments.runner import default_policies

        policies = list(default_policies())
    spec_list = resolve_scenarios(specs)
    from repro.experiments.runner import check_unique_labels

    check_unique_labels(spec_list)
    cells = []
    index = 0
    for spec_idx, spec in enumerate(spec_list):
        for policy in policies:
            for seed in spec.seeds:
                cells.append(
                    {
                        "index": index,
                        "scenario": spec.label,
                        "spec_index": spec_idx,
                        "policy": policy,
                        "seed": seed,
                    }
                )
                index += 1
    return {
        "scenarios": [
            {"label": spec.label, "spec": spec.to_dict()}
            for spec in spec_list
        ],
        "policies": list(policies),
        "cells": cells,
    }
