"""Developer tooling for the reproduction itself.

Nothing in here runs inside a simulation: these are the project's own
correctness tools — currently :mod:`repro.devtools.lint`, the
project-specific static-analysis pass (``scripts/lint_repro.py``).
The package intentionally has no imports at package level so pulling
in ``repro`` for a sweep never pays for the tooling.
"""
