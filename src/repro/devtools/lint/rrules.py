"""R-rules: lock coverage over thread-shared classes.

The PR 8 execution layer serves a :class:`Coordinator` from a
``ThreadingHTTPServer`` — every protocol verb runs on its own handler
thread, and the ledger/accumulator behind it are plain single-writer
value machines.  The invariant that keeps that sound is *lock
coverage*: all guarded state is only touched under ``self._lock``.
This module checks it statically, per class, for classes carrying a
``# repro-lint: thread-shared`` marker on their ``class`` line:

- **R201** — a write (``self._x = ...``, ``+=``, ``del``) to an
  underscore attribute outside ``__init__`` that is not dominated by
  ``with self.<lock>``.  With ``lock=none`` every such write is
  flagged (the class has declared it has no lock to hold).
- **R202** — a *public* method reading guarded state (underscore
  attributes, plus any ``guards=`` names from the marker, e.g. the
  coordinator's ``ledger``/``acc``/``workers``) outside the lock.
  This is the "every public verb acquires the lock on entry" rule.
- **R203** — a public method calling, outside the lock, a private
  helper that needs the lock held.  Private helpers are *assumed*
  lock-held (the ``_sync_journal`` pattern: acquire in the verb,
  share the helper), and the assumption is discharged at every call
  site; needing-the-lock propagates transitively through
  private-to-private calls.

Domination is lexical: a ``with self.<lock>:`` block covers its body,
including nested function definitions (the callback pattern).  The
analysis is intraprocedural per class — calls from *outside* the
class are the transport seam's problem, which is exactly where the
trust boundary already sits.

``# repro-lint: single-writer owner=X`` is the declarative escape
hatch for classes (``WorkLedger``) that are unlocked by design and
serialised by an owning class; the owner names them in its own
``guards=`` list, which is what proves the coverage.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.devtools.lint.core import (
    ClassMarker,
    Finding,
    LintConfig,
    snippet_at,
)

__all__ = ["check_rrules"]

#: Methods exempt from lock checks: construction happens-before
#: publication to other threads, and the context-manager protocol
#: only dispatches to public methods that lock for themselves.
_EXEMPT_METHODS = frozenset({
    "__init__", "__post_init__", "__new__", "__del__",
    "__enter__", "__exit__", "__repr__",
})


@dataclass
class _Access:
    attr: str
    line: int
    col: int
    locked: bool
    is_write: bool


@dataclass
class _MethodScan:
    name: str
    public: bool
    accesses: List[_Access] = field(default_factory=list)
    #: (helper_name, line, col, locked) for self._helper(...) calls.
    helper_calls: List[Tuple[str, int, int, bool]] = (
        field(default_factory=list)
    )


def check_rrules(
    tree: ast.AST,
    lines: Sequence[str],
    rel: str,
    config: LintConfig,
    markers_at: Dict[int, ClassMarker],
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        marker = markers_at.get(node.lineno)
        if marker is None or marker.kind != "thread-shared":
            continue
        findings.extend(
            _check_class(node, marker, lines, rel)
        )
    return findings


def _check_class(
    cls: ast.ClassDef,
    marker: ClassMarker,
    lines: Sequence[str],
    rel: str,
) -> List[Finding]:
    lock = marker.lock
    guards = set(marker.guards)
    scans: Dict[str, _MethodScan] = {}
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan = _MethodScan(
                name=item.name,
                public=not item.name.startswith("_"),
            )
            _scan(item, lock, guards, scan, locked=False)
            scans[item.name] = scan

    findings: List[Finding] = []

    def emit(rule: str, line: int, col: int, message: str) -> None:
        findings.append(Finding(
            rule=rule, path=rel, line=line, col=col,
            message=message, snippet=snippet_at(lines, line),
        ))

    if lock == "none":
        # No lock to hold: any shared-attribute write outside
        # construction is a race by definition (suppress with a
        # reason when the write is genuinely GIL-atomic).
        for scan in scans.values():
            if scan.name in _EXEMPT_METHODS:
                continue
            for acc in scan.accesses:
                if acc.is_write:
                    emit(
                        "R201", acc.line, acc.col,
                        f"{cls.name}.{scan.name} writes shared "
                        f"'self.{acc.attr}' but the class is marked "
                        f"lock=none",
                    )
        return findings

    # Fixed point: which private methods need the lock held on entry?
    needs_lock: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for scan in scans.values():
            if scan.public or scan.name in needs_lock:
                continue
            if scan.name in _EXEMPT_METHODS:
                continue
            touches = any(
                not acc.locked for acc in scan.accesses
            ) or any(
                not locked and helper in needs_lock
                for helper, _, _, locked in scan.helper_calls
            )
            if touches:
                needs_lock.add(scan.name)
                changed = True

    for scan in scans.values():
        if scan.name in _EXEMPT_METHODS:
            continue
        if not scan.public:
            continue
        for acc in scan.accesses:
            if acc.locked:
                continue
            if acc.is_write:
                emit(
                    "R201", acc.line, acc.col,
                    f"{cls.name}.{scan.name} writes shared "
                    f"'self.{acc.attr}' outside 'with self.{lock}'",
                )
            else:
                emit(
                    "R202", acc.line, acc.col,
                    f"{cls.name}.{scan.name} is public and touches "
                    f"guarded 'self.{acc.attr}' outside "
                    f"'with self.{lock}'",
                )
        for helper, line, col, locked in scan.helper_calls:
            if not locked and helper in needs_lock:
                emit(
                    "R203", line, col,
                    f"{cls.name}.{scan.name} calls lock-requiring "
                    f"helper 'self.{helper}()' outside "
                    f"'with self.{lock}'",
                )
    return findings


def _is_lock_with(node, lock: str) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr == lock
        ):
            return True
        # self._lock.acquire()-style context managers or
        # `with self._lock as l` are covered by the Attribute case
        # above; condition variables (`with self._cv`) would need
        # their own marker option.
    return False


def _guarded_self_attr(
    node: ast.AST, lock: str, guards: Set[str]
) -> str:
    """The guarded attribute name a ``self.X`` node touches, or ''."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        attr = node.attr
        if attr == lock:
            return ""
        if attr.startswith("_") or attr in guards:
            return attr
    return ""


def _scan(
    node: ast.AST,
    lock: str,
    guards: Set[str],
    scan: _MethodScan,
    locked: bool,
) -> None:
    """Walk a method body recording guarded accesses with their
    lock-domination state."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        inner = locked or _is_lock_with(node, lock)
        for item in node.items:
            _scan(item.context_expr, lock, guards, scan, locked)
        for child in node.body:
            _scan(child, lock, guards, scan, inner)
        return
    if isinstance(node, ast.Attribute):
        attr = _guarded_self_attr(node, lock, guards)
        if attr:
            scan.accesses.append(_Access(
                attr=attr, line=node.lineno, col=node.col_offset,
                locked=locked,
                is_write=isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ),
            ))
        _scan(node.value, lock, guards, scan, locked)
        return
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr.startswith("_")
            and func.attr != lock
        ):
            scan.helper_calls.append(
                (func.attr, node.lineno, node.col_offset, locked)
            )
            # The attribute read itself (self._helper) is part of the
            # call record, not a state access: skip down to the args.
            for arg in node.args:
                _scan(arg, lock, guards, scan, locked)
            for kw in node.keywords:
                _scan(kw.value, lock, guards, scan, locked)
            return
        for child in ast.iter_child_nodes(node):
            _scan(child, lock, guards, scan, locked)
        return
    for child in ast.iter_child_nodes(node):
        _scan(child, lock, guards, scan, locked)
