"""repro-lint: project-specific static analysis.

Three rule families, tuned to the guarantees this codebase sells
rather than to generic style:

- **D-rules (determinism)** — every sweep artifact is golden-pinned
  byte-for-byte, so anything that could make two runs differ (global
  RNGs, wall-clock reads, unordered set iteration feeding ordered
  output, unsorted directory listings, ``hash()`` order) is flagged
  at the source level instead of caught by an expensive CI diff.
- **R-rules (lock coverage)** — the coordinator/worker execution
  layer mutates shared state from HTTP handler threads; classes
  marked ``# repro-lint: thread-shared`` get a lightweight race
  detector: shared-attribute writes and guarded-state access must be
  dominated by ``with self._lock``.
- **P-rules (value-object purity)** — frozen dataclasses are only
  mutated (``object.__setattr__``) inside their own modules, and the
  validation-skipping :meth:`AllocationPlan.trusted` constructor is
  only invoked from the allowlisted trust boundary.

Entry points: :func:`lint_paths` (the ``scripts/lint_repro.py`` CLI
driver), :func:`lint_source` (fixture tests).  See
:mod:`repro.devtools.lint.core` for suppressions, markers and the
baseline format, and README.md ("Static analysis & invariants") for
the rule catalogue.
"""

from repro.devtools.lint.core import (
    RULES,
    Finding,
    LintConfig,
    LintReport,
    baseline_entries,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)

__all__ = [
    "RULES",
    "Finding",
    "LintConfig",
    "LintReport",
    "baseline_entries",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_text",
    "save_baseline",
]
