"""D-rules: determinism hygiene.

Everything this reproduction exports is golden-pinned byte-for-byte
across serial / parallel / sharded / distributed execution, so any
source of run-to-run variation is a bug *before* it ever reaches the
CI diffs.  The rules:

- **D101** — unseeded RNGs: ``random.Random()`` with no arguments, or
  any draw from the module-level RNG (``random.random()``,
  ``random.choice()``, ...).  Seeded construction
  (``random.Random(seed)``) is the sanctioned pattern.
- **D102** — wall-clock reads (``time.time``, ``time.time_ns``,
  ``datetime.now/utcnow/today``) outside the allowlisted CLI/bench
  timing modules.  Monotonic/performance clocks are fine: they time,
  they do not *date*, and nothing derived from them may enter an
  artifact (the lease ledger logs decisions, never timestamps).
- **D103** — iterating an unordered ``set`` (literal, comprehension,
  ``set(...)`` call, or a local known to hold one) where the
  consumer is order-sensitive: a ``for`` loop, a comprehension
  generator, ``list()``/``tuple()``/``enumerate()``/``reversed()``/
  ``iter()`` or ``str.join``.  Order-insensitive consumers
  (``sorted``, ``len``, ``sum``, ``min``, ``max``, ``any``, ``all``,
  membership) are not flagged.
- **D104** — unsorted filesystem enumeration (``os.listdir``,
  ``os.scandir``, ``glob.glob/iglob``, ``Path.glob/rglob/iterdir``)
  unless the value flows through ``sorted(...)`` within the same
  statement.  OS directory order is arbitrary; artifact discovery
  (``merge``, ``--resume``) must not depend on it.
- **D105** — builtin ``hash()``: salted per process for str/bytes
  (PYTHONHASHSEED), so anything ordered or keyed by it varies across
  runs.  The repo's content keys use ``hashlib`` digests instead.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.core import Finding, LintConfig, snippet_at

__all__ = ["check_drules"]

#: Module-level draws from the shared random.Random instance.
_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate",
    "getrandbits", "randbytes", "seed",
})

#: Wall-clock attribute reads on datetime/date objects.
_WALLCLOCK_DT_ATTRS = frozenset({"now", "utcnow", "today"})

#: Order-sensitive consumers of an iterable (builtin names).
_ORDER_SENSITIVE_CALLS = frozenset({
    "list", "tuple", "enumerate", "iter", "reversed",
})

#: Filesystem enumeration method names (attribute calls on anything).
_FS_METHODS = frozenset({"iterdir", "glob", "rglob"})


def check_drules(
    tree: ast.AST,
    lines: Sequence[str],
    rel: str,
    config: LintConfig,
) -> List[Finding]:
    visitor = _DeterminismVisitor(lines, rel, config)
    visitor.visit(tree)
    return visitor.findings


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(
        self, lines: Sequence[str], rel: str, config: LintConfig
    ) -> None:
        self.lines = lines
        self.rel = rel
        self.config = config
        self.findings: List[Finding] = []
        self._wallclock_ok = config.path_allowed(
            rel, config.wallclock_allow
        )
        self._hash_ok = config.path_allowed(rel, config.hash_allow)
        #: local alias -> canonical module ("random", "time", ...).
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (module, attr) for from-imports.
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: stack of per-scope {name: holds-a-set} tables.
        self._set_vars: List[Set[str]] = [set()]
        #: ancestor stack for same-statement sorted() detection.
        self._parents: List[ast.AST] = []

    # -- plumbing ------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.rel, line=node.lineno,
            col=node.col_offset, message=message,
            snippet=snippet_at(self.lines, node.lineno),
        ))

    def generic_visit(self, node: ast.AST) -> None:
        self._parents.append(node)
        try:
            super().generic_visit(node)
        finally:
            self._parents.pop()

    def _resolve(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        """``(module, attr)`` a call target resolves to, if known."""
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = func.value.id
            if base in self.module_aliases:
                return self.module_aliases[base], func.attr
            if base in self.from_imports:
                # e.g. `from datetime import datetime` then
                # `datetime.now()` -> ("datetime", "datetime").attr
                mod, attr = self.from_imports[base]
                return f"{mod}.{attr}", func.attr
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Attribute
        ) and isinstance(func.value.value, ast.Name):
            # e.g. `import datetime` then `datetime.datetime.now()`.
            base = func.value.value.id
            if base in self.module_aliases:
                return (
                    f"{self.module_aliases[base]}.{func.value.attr}",
                    func.attr,
                )
        if isinstance(func, ast.Name) and func.id in self.from_imports:
            mod, attr = self.from_imports[func.id]
            return mod, attr
        return None

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    node.module, alias.name
                )
        self.generic_visit(node)

    # -- set-variable tracking ----------------------------------------

    def _enter_scope(self) -> None:
        self._set_vars.append(set())

    def _exit_scope(self) -> None:
        self._set_vars.pop()

    def visit_FunctionDef(self, node) -> None:
        self._enter_scope()
        try:
            self.generic_visit(node)
        finally:
            self._exit_scope()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_scope()
        try:
            self.generic_visit(node)
        finally:
            self._exit_scope()

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Name
        ) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_vars)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra propagates set-ness (a | b, a - b, ...).
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        return False

    @staticmethod
    def _annotation_is_set(annotation: ast.AST) -> bool:
        # Matches Set[...], set[...], FrozenSet[...], bare Set/set.
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            return target.attr in ("Set", "FrozenSet", "AbstractSet")
        if isinstance(target, ast.Name):
            return target.id in (
                "set", "Set", "frozenset", "FrozenSet", "AbstractSet"
            )
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self._set_vars[-1].add(target.id)
                else:
                    self._set_vars[-1].discard(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            if self._annotation_is_set(node.annotation) or (
                node.value is not None
                and self._is_set_expr(node.value)
            ):
                self._set_vars[-1].add(node.target.id)

    # -- iteration sites (D103) ---------------------------------------

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node) and (
            not self._sorted_in_statement()
        ):
            self._emit(
                "D103", iter_node,
                "iterating an unordered set; wrap in sorted(...) or "
                "restructure so order cannot reach an artifact",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- calls (D101, D102, D104, D105, D103 consumers) ---------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is not None:
            self._check_resolved_call(node, *resolved)
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name == "hash" and not self._hash_ok:
                self._emit(
                    "D105", node,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); use hashlib for stable keys",
                )
            if (
                name in _ORDER_SENSITIVE_CALLS
                and node.args
                and self._is_set_expr(node.args[0])
            ):
                self._emit(
                    "D103", node,
                    f"{name}() over an unordered set fixes an "
                    f"arbitrary order; use sorted(...)",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._emit(
                "D103", node,
                "join over an unordered set serialises an arbitrary "
                "order; use sorted(...)",
            )
        if (
            resolved is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_METHODS
            and not self._sorted_in_statement()
        ):
            self._emit(
                "D104", node,
                f".{node.func.attr}() order is OS-arbitrary; wrap "
                f"the enumeration in sorted(...)",
            )
        self.generic_visit(node)

    def _check_resolved_call(
        self, node: ast.Call, module: str, attr: str
    ) -> None:
        if module == "random":
            if attr == "Random" and not node.args and not node.keywords:
                self._emit(
                    "D101", node,
                    "random.Random() with no seed draws from OS "
                    "entropy; pass the cell's seed",
                )
            elif attr in _GLOBAL_RNG_FNS:
                self._emit(
                    "D101", node,
                    f"random.{attr}() uses the shared module-level "
                    f"RNG; use a seeded random.Random(seed) instance",
                )
        elif module == "time" and attr in ("time", "time_ns"):
            if not self._wallclock_ok:
                self._emit(
                    "D102", node,
                    f"time.{attr}() reads the wall clock; use "
                    f"time.monotonic()/perf_counter() for intervals "
                    f"(or allowlist genuine CLI timing)",
                )
        elif module in (
            "datetime.datetime", "datetime.date", "datetime"
        ) and attr in _WALLCLOCK_DT_ATTRS:
            if not self._wallclock_ok:
                self._emit(
                    "D102", node,
                    f"datetime {attr}() reads the wall clock; "
                    f"timestamps must not influence artifacts",
                )
        elif module == "os" and attr in ("listdir", "scandir"):
            if not self._sorted_in_statement():
                self._emit(
                    "D104", node,
                    f"os.{attr}() order is OS-arbitrary; wrap in "
                    f"sorted(...)",
                )
        elif module == "glob" and attr in ("glob", "iglob"):
            if not self._sorted_in_statement():
                self._emit(
                    "D104", node,
                    f"glob.{attr}() order is OS-arbitrary; wrap in "
                    f"sorted(...)",
                )

    def _sorted_in_statement(self) -> bool:
        """Whether any ancestor within the current statement is a
        ``sorted(...)`` call — the sanctioned fix for D104."""
        for ancestor in reversed(self._parents):
            if isinstance(ancestor, ast.stmt):
                return False
            if isinstance(ancestor, ast.Call) and isinstance(
                ancestor.func, ast.Name
            ) and ancestor.func.id == "sorted":
                return True
        return False
