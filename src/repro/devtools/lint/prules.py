"""P-rules: value-object purity and the trusted-plan boundary.

The sweep pipeline's correctness story leans on frozen value objects
(:class:`AllocationPlan`, :class:`ScenarioSpec`, :class:`CellResult`,
...) being *actually* immutable once they leave their module: they
are hashed into manifests, pickled across processes and compared
against goldens.  Python's only escape hatch, ``object.__setattr__``,
is legitimate exactly twice — a frozen dataclass normalising its own
fields in ``__post_init__`` (receiver ``self``), and a value object's
own module building instances around the constructor (the
``AllocationPlan.trusted`` pattern).  Everything else is a mutation
of somebody else's sealed value:

- **P301** — ``object.__setattr__`` (or a local alias of it) with a
  receiver other than ``self``, outside the allowlisted value-object
  modules.
- **P302** — a call to ``AllocationPlan.trusted(...)`` outside the
  allowlisted trust boundary (the built-in policies and the plan
  module itself).  ``trusted`` skips the validating constructor, so
  its callers carry proof obligations the validator never re-checks —
  the PR 7 contract, previously enforced by convention only.  New
  call sites must either go through ``AllocationPlan(...)`` or be
  added to the allowlist with review.
"""

from __future__ import annotations

import ast
from typing import List, Sequence, Set

from repro.devtools.lint.core import Finding, LintConfig, snippet_at

__all__ = ["check_prules"]


def check_prules(
    tree: ast.AST,
    lines: Sequence[str],
    rel: str,
    config: LintConfig,
) -> List[Finding]:
    visitor = _PurityVisitor(lines, rel, config)
    visitor.visit(tree)
    return visitor.findings


def _is_object_setattr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "__setattr__"
        and isinstance(node.value, ast.Name)
        and node.value.id == "object"
    )


class _PurityVisitor(ast.NodeVisitor):
    def __init__(
        self, lines: Sequence[str], rel: str, config: LintConfig
    ) -> None:
        self.lines = lines
        self.rel = rel
        self.config = config
        self.findings: List[Finding] = []
        self._setattr_ok = config.path_allowed(
            rel, config.setattr_allow
        )
        self._trusted_ok = config.path_allowed(
            rel, config.trusted_allow
        )
        #: local names bound to object.__setattr__ (the
        #: ``st = object.__setattr__`` idiom).
        self._setattr_aliases: Set[str] = set()

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.rel, line=node.lineno,
            col=node.col_offset, message=message,
            snippet=snippet_at(self.lines, node.lineno),
        ))

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_object_setattr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._setattr_aliases.add(target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._setattr_ok and (
            _is_object_setattr(node.func)
            or (
                isinstance(node.func, ast.Name)
                and node.func.id in self._setattr_aliases
            )
        ):
            receiver = node.args[0] if node.args else None
            if not (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
            ):
                self._emit(
                    "P301", node,
                    "object.__setattr__ on a non-self receiver "
                    "mutates a frozen value object from outside its "
                    "module; move the mutation into the value "
                    "object's own module (or allowlist it)",
                )
        if not self._trusted_ok and (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "trusted"
            and self._resolves_to_allocation_plan(node.func.value)
        ):
            self._emit(
                "P302", node,
                "AllocationPlan.trusted() skips validation and is "
                "restricted to the plan trust boundary; use "
                "AllocationPlan(...) or extend "
                "LintConfig.trusted_allow with review",
            )
        self.generic_visit(node)

    @staticmethod
    def _resolves_to_allocation_plan(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id == "AllocationPlan"
        if isinstance(node, ast.Attribute):
            return node.attr == "AllocationPlan"
        return False
