"""repro-lint core: findings, directives, baseline, driver.

The analysis itself lives in the per-family modules
(:mod:`~repro.devtools.lint.drules`, :mod:`~repro.devtools.lint.
rrules`, :mod:`~repro.devtools.lint.prules`); this module owns
everything they share:

Directives
----------

All in-source communication with the linter rides one comment shape::

    # repro-lint: allow[D103] -- completion-order iteration; folded by index
    # repro-lint: allow[D102,D105] -- bench timing, never serialised
    class Coordinator:  # repro-lint: thread-shared guards=ledger,acc,workers
    class WorkLedger:   # repro-lint: single-writer owner=Coordinator._lock

``allow`` suppresses the named rules on its own line (or, when the
comment stands alone on a line, on the next line).  The reason after
``--`` is **mandatory** — a reasonless suppression is itself a finding
(L001), and naming an unknown rule is one too (L002).

``thread-shared`` marks a class for the R-family race detector.
Options: ``lock=NAME`` (the guarding attribute, default ``_lock``;
``lock=none`` for classes whose only cross-thread state is a
GIL-atomic flag — writes to ``self._*`` are then flagged
unconditionally), ``guards=a,b`` (extra non-underscore attributes,
e.g. ``ledger``, whose access must also be lock-dominated).
``single-writer`` is declarative: it documents that an unlocked class
is serialised by an external owner and is deliberately not checked
(the owner's ``guards=`` entry is what proves the coverage).

Baseline
--------

A checked-in JSON file recording findings that are understood and
accepted, so the lint gate stays at zero *new* findings.  Each entry
carries a mandatory reason and matches by ``(rule, path, snippet)`` —
the stripped source line — so entries survive unrelated edits moving
line numbers.  Entries that no longer match anything are reported as
stale (a nudge to prune, not a failure).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "RULES",
    "ClassMarker",
    "Finding",
    "LintConfig",
    "LintReport",
    "baseline_entries",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_text",
    "save_baseline",
]

#: Every rule the pass can emit, with its one-line description.
RULES: Dict[str, str] = {
    "L001": "repro-lint suppression without a reason",
    "L002": "repro-lint directive names an unknown rule",
    "L003": "file does not parse",
    "D101": "unseeded random number generator (module-level random.* "
            "or random.Random() with no seed)",
    "D102": "wall-clock read (time.time / datetime.now) outside "
            "allowlisted timing code",
    "D103": "iteration over an unordered set may feed ordered "
            "accumulation or serialization",
    "D104": "unsorted filesystem enumeration (os.listdir / glob / "
            "iterdir) in artifact discovery",
    "D105": "builtin hash() is PYTHONHASHSEED-dependent for "
            "str/bytes keys",
    "R201": "write to shared attribute of a thread-shared class "
            "outside 'with self.<lock>'",
    "R202": "public method of a thread-shared class touches guarded "
            "state outside its lock",
    "R203": "lock-requiring private helper called outside the lock",
    "P301": "object.__setattr__ on a non-self receiver outside the "
            "value object's own module",
    "P302": "AllocationPlan.trusted() invoked outside the allowlisted "
            "trust boundary",
}

#: Rules that cannot be suppressed (they police the lint's own
#: directive hygiene — suppressing a missing reason with another
#: reasonless directive must not be expressible).
_UNSUPPRESSABLE = frozenset({"L001", "L002", "L003"})


@dataclass(frozen=True)
class Finding:
    """One lint finding, addressable for suppression and baseline."""

    rule: str
    path: str          #: repo-relative posix path
    line: int          #: 1-based
    col: int           #: 0-based
    message: str
    snippet: str       #: stripped source line (baseline match key)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass(frozen=True)
class ClassMarker:
    """A parsed class-line directive (``thread-shared`` /
    ``single-writer``)."""

    kind: str                       #: "thread-shared" | "single-writer"
    lock: str = "_lock"             #: guarding attribute; "none" = no lock
    guards: Tuple[str, ...] = ()    #: extra guarded attribute names
    owner: str = ""                 #: single-writer: documented owner
    line: int = 0


@dataclass
class LintConfig:
    """Knobs of the pass (defaults are the repo's own policy).

    Path values are repo-relative posix *prefixes* — an allowlist
    entry ``"scripts/"`` covers the whole directory.
    """

    #: Modules whose wall-clock reads are legitimate (CLI/bench
    #: timing that never flows into artifacts).
    wallclock_allow: Tuple[str, ...] = (
        "src/repro/cli.py",
        "scripts/",
    )
    #: Modules allowed to use builtin hash() (none in src today).
    hash_allow: Tuple[str, ...] = ("scripts/",)
    #: Modules allowed to call object.__setattr__ on a receiver other
    #: than ``self`` — exactly the frozen value objects' own modules
    #: (AllocationPlan.trusted builds instances via object.__new__).
    setattr_allow: Tuple[str, ...] = (
        "src/repro/sim/plan.py",
    )
    #: The AllocationPlan.trusted() trust boundary (the PR 7
    #: validation-skipping constructor): only these modules may call
    #: it.  Everyone else goes through the validating constructor.
    trusted_allow: Tuple[str, ...] = (
        "src/repro/sim/plan.py",
        "src/repro/core/policy.py",
        "src/repro/baselines/planaria.py",
        "src/repro/baselines/prema.py",
        "src/repro/baselines/static_partition.py",
    )
    #: When set, only emit these rules (the --select knob).
    select: Optional[frozenset] = None

    def path_allowed(
        self, rel: str, prefixes: Tuple[str, ...]
    ) -> bool:
        return any(rel.startswith(p) for p in prefixes)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


# -- directive parsing -------------------------------------------------

_DIRECTIVE_RE = re.compile(r"#\s*repro-lint:\s*(.+?)\s*$")
_ALLOW_RE = re.compile(
    r"^allow\[([A-Za-z0-9,\s]*)\]\s*(?:--\s*(.*))?$"
)


def _comments(source: str) -> List[Tuple[int, int, str]]:
    """All comment tokens as ``(line, col, text)``.

    Tokenizer-based so directive examples inside docstrings and
    string literals are never mistaken for directives.  A source that
    fails to tokenize yields no comments — ``ast.parse`` will report
    it as L003.
    """
    import io
    import tokenize

    out: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(
            io.StringIO(source).readline
        ):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return out


def _parse_directives(
    source: str,
    lines: Sequence[str],
) -> Tuple[Dict[int, Tuple[frozenset, str]], Dict[int, ClassMarker],
           List[Finding]]:
    """Scan source comments for repro-lint directives.

    Returns ``(allow_at, markers_at, directive_findings)`` where
    ``allow_at`` maps the *effective* line (the directive's own line,
    or the next line for a standalone comment) to the suppressed rule
    set, and ``markers_at`` maps a class line to its marker.
    """
    allow_at: Dict[int, Tuple[frozenset, str]] = {}
    markers_at: Dict[int, ClassMarker] = {}
    problems: List[Finding] = []
    for i, col, raw in _comments(source):
        m = _DIRECTIVE_RE.search(raw)
        if not m:
            continue
        body = m.group(1)
        standalone = not lines[i - 1][:col].strip()
        target = i + 1 if standalone else i
        am = _ALLOW_RE.match(body)
        if am:
            rules = frozenset(
                r.strip() for r in am.group(1).split(",") if r.strip()
            )
            reason = (am.group(2) or "").strip()
            if not reason:
                problems.append(_directive_finding(
                    "L001", i, raw,
                    "suppression needs a reason: "
                    "'# repro-lint: allow[RULE] -- why'",
                ))
                continue
            unknown = sorted(r for r in rules if r not in RULES)
            if unknown or not rules:
                problems.append(_directive_finding(
                    "L002", i, raw,
                    f"unknown rule id(s) {unknown or ['<empty>']} "
                    f"(known: {', '.join(sorted(RULES))})",
                ))
                continue
            allow_at[target] = (rules, reason)
            continue
        tokens = body.split()
        if tokens and tokens[0] in ("thread-shared", "single-writer"):
            opts = {}
            bad = False
            for tok in tokens[1:]:
                if "=" not in tok:
                    bad = True
                    break
                key, _, value = tok.partition("=")
                opts[key] = value
            if bad or not set(opts) <= {"lock", "guards", "owner"}:
                problems.append(_directive_finding(
                    "L002", i, raw,
                    f"malformed {tokens[0]} marker (options: "
                    f"lock=NAME guards=a,b owner=X)",
                ))
                continue
            markers_at[target] = ClassMarker(
                kind=tokens[0],
                lock=opts.get("lock", "_lock"),
                guards=tuple(
                    g for g in opts.get("guards", "").split(",") if g
                ),
                owner=opts.get("owner", ""),
                line=target,
            )
            continue
        problems.append(_directive_finding(
            "L002", i, raw,
            f"unrecognised repro-lint directive {body!r}",
        ))
    return allow_at, markers_at, problems


def _directive_finding(
    rule: str, line: int, raw: str, message: str
) -> Finding:
    return Finding(
        rule=rule, path="", line=line, col=0, message=message,
        snippet=raw.strip(),
    )


# -- per-file driver ---------------------------------------------------

def lint_source(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one module's source text (the fixture-test entry point).

    ``rel_path`` is the repo-relative posix path the allowlists and
    findings use; it need not exist on disk.
    """
    from repro.devtools.lint.drules import check_drules
    from repro.devtools.lint.prules import check_prules
    from repro.devtools.lint.rrules import check_rrules

    if config is None:
        config = LintConfig()
    lines = source.splitlines()
    allow_at, markers_at, problems = _parse_directives(source, lines)
    findings = [
        Finding(f.rule, rel_path, f.line, f.col, f.message, f.snippet)
        for f in problems
    ]
    suppressed_count = 0
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        findings.append(Finding(
            rule="L003", path=rel_path, line=exc.lineno or 1,
            col=exc.offset or 0,
            message=f"syntax error: {exc.msg}",
            snippet=(lines[exc.lineno - 1].strip()
                     if exc.lineno and exc.lineno <= len(lines)
                     else ""),
        ))
        return findings
    raw: List[Finding] = []
    raw.extend(check_drules(tree, lines, rel_path, config))
    raw.extend(check_rrules(tree, lines, rel_path, config, markers_at))
    raw.extend(check_prules(tree, lines, rel_path, config))
    for f in raw:
        if config.select is not None and f.rule not in config.select:
            continue
        if _is_suppressed(f, allow_at):
            suppressed_count += 1
            continue
        findings.append(f)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    # Stash the suppression count on the list for lint_paths to pick
    # up without changing the return type fixture tests rely on.
    findings = _FindingList(findings)
    findings.suppressed = suppressed_count
    return findings


class _FindingList(list):
    """A list of findings plus the per-file suppression count."""

    suppressed = 0


def _is_suppressed(
    finding: Finding,
    allow_at: Dict[int, Tuple[frozenset, str]],
) -> bool:
    if finding.rule in _UNSUPPRESSABLE:
        return False
    for line in (finding.line, finding.line - 1):
        entry = allow_at.get(line)
        if entry and finding.rule in entry[0]:
            return True
    return False


def snippet_at(lines: Sequence[str], lineno: int) -> str:
    """The stripped source line a finding anchors to."""
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


# -- baseline ----------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path) -> List[dict]:
    """Read and validate a baseline file.

    Raises ``ValueError`` on malformed files or entries missing their
    mandatory reason — a baseline that cannot explain itself is a
    config error, not a soft warning.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}")
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("entries"), list)
    ):
        raise ValueError(
            f"baseline {path} is not a version-{BASELINE_VERSION} "
            f"repro-lint baseline"
        )
    entries = payload["entries"]
    for n, entry in enumerate(entries):
        if not isinstance(entry, dict) or not (
            isinstance(entry.get("rule"), str)
            and isinstance(entry.get("path"), str)
            and isinstance(entry.get("snippet"), str)
        ):
            raise ValueError(
                f"baseline {path} entry {n} is malformed "
                f"(needs rule/path/snippet strings)"
            )
        if entry["rule"] not in RULES:
            raise ValueError(
                f"baseline {path} entry {n} names unknown rule "
                f"{entry['rule']!r}"
            )
        if not str(entry.get("reason", "")).strip():
            raise ValueError(
                f"baseline {path} entry {n} ({entry['rule']} at "
                f"{entry['path']}) has no reason; every accepted "
                f"finding must say why"
            )
    return entries


def save_baseline(path, entries: List[dict]) -> None:
    doc = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )


def baseline_entries(
    findings: Iterable[Finding],
    reason: str = "TODO: justify this accepted finding",
) -> List[dict]:
    """Baseline entries for findings (dedup by match key), sorted."""
    seen = {}
    for f in findings:
        key = (f.rule, f.path, f.snippet)
        if key not in seen:
            seen[key] = {
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet,
                "reason": reason,
            }
    return sorted(
        seen.values(),
        key=lambda e: (e["path"], e["rule"], e["snippet"]),
    )


def apply_baseline(
    findings: List[Finding], entries: List[dict]
) -> Tuple[List[Finding], int, List[dict]]:
    """Drop findings matched by the baseline.

    Returns ``(remaining, matched_count, stale_entries)``.
    """
    keys = {(e["rule"], e["path"], e["snippet"]) for e in entries}
    used = set()
    remaining = []
    matched = 0
    for f in findings:
        key = (f.rule, f.path, f.snippet)
        if f.rule not in _UNSUPPRESSABLE and key in keys:
            used.add(key)
            matched += 1
        else:
            remaining.append(f)
    stale = [
        e for e in entries
        if (e["rule"], e["path"], e["snippet"]) not in used
    ]
    return remaining, matched, stale


# -- tree driver -------------------------------------------------------

def lint_paths(
    paths: Sequence,
    repo_root,
    config: Optional[LintConfig] = None,
    baseline: Optional[List[dict]] = None,
) -> LintReport:
    """Lint every ``.py`` file under the given paths.

    ``paths`` may mix files and directories; directories are walked
    recursively in sorted order (the linter practices what it
    preaches).  Findings are reported repo-root-relative.
    """
    if config is None:
        config = LintConfig()
    repo_root = Path(repo_root)
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    report = LintReport()
    all_findings: List[Finding] = []
    for f in files:
        try:
            rel = f.resolve().relative_to(repo_root.resolve())
            rel_str = rel.as_posix()
        except ValueError:
            rel_str = f.as_posix()
        source = f.read_text()
        file_findings = lint_source(source, rel_str, config)
        all_findings.extend(file_findings)
        report.suppressed += getattr(file_findings, "suppressed", 0)
        report.files_checked += 1
    if baseline:
        all_findings, matched, stale = apply_baseline(
            all_findings, baseline
        )
        report.baselined = matched
        report.stale_baseline = stale
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.findings = all_findings
    return report


# -- rendering ---------------------------------------------------------

def render_text(report: LintReport) -> str:
    out = []
    for f in report.findings:
        out.append(
            f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        )
        if f.snippet:
            out.append(f"    {f.snippet}")
    for e in report.stale_baseline:
        out.append(
            f"stale baseline entry: {e['rule']} at {e['path']} "
            f"({e['snippet']!r}) no longer matches anything — prune it"
        )
    out.append(
        f"repro-lint: {len(report.findings)} finding(s) in "
        f"{report.files_checked} file(s) "
        f"({report.suppressed} suppressed inline, "
        f"{report.baselined} baselined"
        + (f", {len(report.stale_baseline)} stale baseline entr"
           f"{'y' if len(report.stale_baseline) == 1 else 'ies'}"
           if report.stale_baseline else "")
        + ")"
    )
    return "\n".join(out)


def render_json(report: LintReport) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in report.findings],
            "stale_baseline": report.stale_baseline,
            "files_checked": report.files_checked,
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "clean": report.clean,
        },
        indent=2,
        sort_keys=True,
    )
