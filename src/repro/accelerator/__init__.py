"""Gemmini-style accelerator substrate: tiles, tiling, DMA, MoCA HW."""

from repro.accelerator.area import AreaModel, TILE_AREA_BREAKDOWN
from repro.accelerator.dma import DmaModel, MEM_REQUEST_BYTES
from repro.accelerator.moca_hw import AccessCounter, MoCAHardwareEngine, ThresholdingModule
from repro.accelerator.tile import compute_cycles, max_useful_tiles
from repro.accelerator.tiling import TilingPlan, plan_tiling

__all__ = [
    "AccessCounter",
    "AreaModel",
    "DmaModel",
    "MEM_REQUEST_BYTES",
    "MoCAHardwareEngine",
    "ThresholdingModule",
    "TILE_AREA_BREAKDOWN",
    "TilingPlan",
    "compute_cycles",
    "max_useful_tiles",
    "plan_tiling",
]
