"""Physical-design area model (Table IV).

The paper synthesizes the MoCA-enabled tile on GlobalFoundries 12 nm
(Cadence Genus + Innovus) and reports the per-component breakdown of
Table IV.  We reproduce the accounting: the published component areas
are data; the derived quantities (percentages, MoCA's overhead relative
to the memory interface and to the whole tile) are computed, so the
tests can check the paper's headline claims — MoCA grows the memory
interface by ~1.7 % of tile area... precisely: the memory interface is
1.7 % of the tile and MoCA adds 0.02 % of the tile's area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Table IV component areas in square micrometres (GF 12 nm).
TILE_AREA_BREAKDOWN: Dict[str, float] = {
    "rocket_cpu": 101_000.0,
    "scratchpad": 58_000.0,
    "accumulator": 75_000.0,
    "systolic_array": 78_000.0,
    "instruction_queues": 14_000.0,
    "memory_interface": 8_600.0,
    "moca_hardware": 100.0,
}

#: Total tile area reported in Table IV (includes glue not itemized).
TILE_TOTAL_AREA_UM2 = 493_000.0


@dataclass(frozen=True)
class AreaModel:
    """Area accounting for a MoCA-enabled accelerator tile.

    Attributes:
        components: Component name -> area in um^2.
        tile_total_um2: Total tile area (>= sum of components; the
            remainder is uncharacterized glue/routing).
    """

    components: Tuple[Tuple[str, float], ...] = tuple(
        TILE_AREA_BREAKDOWN.items()
    )
    tile_total_um2: float = TILE_TOTAL_AREA_UM2

    def __post_init__(self) -> None:
        if self.tile_total_um2 <= 0:
            raise ValueError("tile area must be positive")
        if any(area < 0 for _, area in self.components):
            raise ValueError("component areas must be non-negative")
        if self.itemized_total_um2 > self.tile_total_um2:
            raise ValueError("itemized areas exceed the tile total")

    @property
    def component_map(self) -> Dict[str, float]:
        return dict(self.components)

    @property
    def itemized_total_um2(self) -> float:
        """Sum of itemized component areas."""
        return sum(area for _, area in self.components)

    @property
    def glue_um2(self) -> float:
        """Uncharacterized area (routing, clocking, misc logic)."""
        return self.tile_total_um2 - self.itemized_total_um2

    def fraction_of_tile(self, component: str) -> float:
        """A component's share of total tile area."""
        areas = self.component_map
        if component not in areas:
            raise KeyError(f"unknown component {component!r}")
        return areas[component] / self.tile_total_um2

    @property
    def moca_overhead_of_tile(self) -> float:
        """MoCA hardware as a fraction of the whole tile (paper: 0.02 %)."""
        return self.fraction_of_tile("moca_hardware")

    @property
    def moca_overhead_of_memory_interface(self) -> float:
        """MoCA hardware relative to the baseline memory interface."""
        areas = self.component_map
        return areas["moca_hardware"] / areas["memory_interface"]

    def soc_accelerator_area_um2(self, num_tiles: int) -> float:
        """Total accelerator area for an SoC with ``num_tiles`` tiles."""
        if num_tiles <= 0:
            raise ValueError("num_tiles must be positive")
        return num_tiles * self.tile_total_um2

    def breakdown_rows(self) -> List[Tuple[str, float, float]]:
        """Table IV rows: (component, area um^2, % of tile area)."""
        rows = [
            (name, area, 100.0 * area / self.tile_total_um2)
            for name, area in self.components
        ]
        rows.append(("tile_total", self.tile_total_um2, 100.0))
        return rows

    def format_table(self) -> str:
        """Render Table IV as aligned text."""
        lines = [f"{'Component':<22s} {'Area (um^2)':>12s} {'% of tile':>10s}"]
        for name, area, pct in self.breakdown_rows():
            lines.append(f"{name:<22s} {area:>12,.0f} {pct:>9.2f}%")
        return "\n".join(lines)
