"""Gemmini-style instruction streams for DNN layers.

Gemmini executes DNN layers as sequences of a few coarse instructions:
``mvin`` (DMA a tensor slice into the scratchpad), ``preload`` /
``compute`` (feed the systolic array), and ``mvout`` (DMA results back
through the accumulator).  MoCA's hardware sits precisely on the
``mvin``/``mvout`` path — between the ld/st queues and the request
generation engine — which is why it can throttle memory without
touching the compute pipeline.

This module lowers a layer (through its scratchpad tiling plan) into
that instruction stream; :mod:`repro.accelerator.pipeline` executes the
stream on a decoupled access/execute pipeline model.  Together they
provide an instruction-level cross-check of the analytical latency
model (Algorithm 1) and of the throttling engine's effect on real
instruction streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.accelerator.tiling import plan_tiling
from repro.config import SoCConfig
from repro.models.layers import (
    Layer,
    LayerKind,
    effective_pe_utilization,
)


class Opcode(enum.Enum):
    """The coarse Gemmini-style instruction set."""

    MVIN = "mvin"        # DMA load into scratchpad
    COMPUTE = "compute"  # systolic-array work
    MVOUT = "mvout"      # DMA store from accumulator


@dataclass(frozen=True)
class Instruction:
    """One coarse instruction.

    Attributes:
        op: Opcode.
        num_bytes: Bytes moved (MVIN/MVOUT; 0 for COMPUTE).
        macs: Multiply-accumulates (COMPUTE; 0 for moves).
        tile_index: Which data tile of the layer this belongs to, used
            by the pipeline model to track dependencies.
    """

    op: Opcode
    num_bytes: int = 0
    macs: int = 0
    tile_index: int = 0

    def __post_init__(self) -> None:
        if self.num_bytes < 0 or self.macs < 0:
            raise ValueError("instruction sizes must be non-negative")
        if self.op is Opcode.COMPUTE and self.num_bytes:
            raise ValueError("COMPUTE moves no bytes")
        if self.op is not Opcode.COMPUTE and self.macs:
            raise ValueError("moves perform no MACs")


def lower_layer(layer: Layer, soc: SoCConfig) -> List[Instruction]:
    """Lower a layer into its per-data-tile instruction stream.

    Each data tile of the scratchpad tiling plan becomes
    ``MVIN(weights slice) MVIN(input slice) COMPUTE MVOUT(output
    slice)``; MEM layers lower to pure ``MVIN``/``MVOUT`` streams.
    Totals are conserved: summed bytes equal the layer's load/store
    accounting and summed MACs equal ``layer.macs``.
    """
    if layer.kind is LayerKind.MEM:
        return [
            Instruction(Opcode.MVIN, num_bytes=layer.total_load_bytes),
            Instruction(Opcode.MVOUT, num_bytes=layer.total_store_bytes),
        ]

    plan = plan_tiling(layer, soc)
    tiles = plan.tiling_factor
    instructions: List[Instruction] = []
    # Integer-exact splitting: distribute remainders over early tiles.
    weight_total = layer.weight_bytes + layer.bias_bytes
    input_total = layer.input_bytes + plan.refetch_bytes
    output_total = layer.output_bytes
    macs_total = layer.macs
    for i in range(tiles):
        w = _split(weight_total, tiles, i)
        a = _split(input_total, tiles, i)
        o = _split(output_total, tiles, i)
        m = _split(macs_total, tiles, i)
        if w:
            instructions.append(
                Instruction(Opcode.MVIN, num_bytes=w, tile_index=i)
            )
        if a:
            instructions.append(
                Instruction(Opcode.MVIN, num_bytes=a, tile_index=i)
            )
        instructions.append(
            Instruction(Opcode.COMPUTE, macs=m, tile_index=i)
        )
        if o:
            instructions.append(
                Instruction(Opcode.MVOUT, num_bytes=o, tile_index=i)
            )
    return instructions


def _split(total: int, parts: int, index: int) -> int:
    """Size of the ``index``-th of ``parts`` near-equal integer splits."""
    base = total // parts
    extra = 1 if index < total % parts else 0
    return base + extra


def stream_totals(instructions: List[Instruction]) -> dict:
    """Aggregate bytes/MACs of a stream (conservation checks)."""
    loads = sum(i.num_bytes for i in instructions if i.op is Opcode.MVIN)
    stores = sum(i.num_bytes for i in instructions if i.op is Opcode.MVOUT)
    macs = sum(i.macs for i in instructions if i.op is Opcode.COMPUTE)
    return {"load_bytes": loads, "store_bytes": stores, "macs": macs}


def compute_rate_for(layer: Layer, soc: SoCConfig) -> float:
    """Sustained MACs/cycle one tile achieves on this layer."""
    util = effective_pe_utilization(
        layer, soc.tile.array_rows, soc.tile.array_cols
    )
    if util <= 0:
        return 0.0
    return soc.tile.effective_macs_per_cycle * util
