"""Scratchpad tiling of DNN layers.

A layer whose working set exceeds the tile's private scratchpad must be
processed in multiple *data tiles* staged through the shared L2.
Algorithm 1 consumes two quantities from this plan:

- ``per_tile_bytes`` — the working set of one data tile (compared with
  the shared-L2 capacity on line 10: if a single data tile exceeds the
  L2, intermediate reuse is lost and the tile's traffic goes to DRAM);
- ``tiling_factor`` — how many data tiles the layer is broken into
  (the multiplier on the refetched traffic on line 11).

The plan mirrors Gemmini's output-stationary-at-the-tile-level loop
ordering: outputs are partitioned into tiles, each tile loads its
weight slice and input patch, accumulates, and writes back.  Input
halos for convolutions are a second-order effect we fold into the
refetch fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SoCConfig
from repro.models.layers import (
    ConvLayer,
    DenseLayer,
    Layer,
    LayerKind,
    ceil_div,
)


@dataclass(frozen=True)
class TilingPlan:
    """How one layer is staged through a tile's scratchpad.

    Attributes:
        per_tile_bytes: Working-set bytes of a single data tile
            (weights slice + input patch + output slice).
        tiling_factor: Number of data tiles the layer splits into.
        refetch_bytes: Input-activation bytes loaded more than once
            because successive output tiles revisit the same inputs.
    """

    per_tile_bytes: int
    tiling_factor: int
    refetch_bytes: int

    def __post_init__(self) -> None:
        if self.per_tile_bytes < 0 or self.refetch_bytes < 0:
            raise ValueError("tiling byte counts must be non-negative")
        if self.tiling_factor < 1:
            raise ValueError("tiling_factor must be at least 1")


def plan_tiling(layer: Layer, soc: SoCConfig) -> TilingPlan:
    """Compute the scratchpad tiling plan for ``layer``.

    MEM layers stream through the DMA without scratchpad blocking, so
    they get a trivial single-tile plan.
    """
    if layer.kind is LayerKind.MEM:
        return TilingPlan(
            per_tile_bytes=layer.total_mem_bytes, tiling_factor=1,
            refetch_bytes=0,
        )

    capacity = soc.tile.scratchpad_bytes
    working_set = layer.weight_bytes + layer.input_bytes + layer.output_bytes
    if working_set <= capacity:
        return TilingPlan(
            per_tile_bytes=working_set, tiling_factor=1, refetch_bytes=0
        )

    if isinstance(layer, DenseLayer):
        return _plan_dense(layer, capacity)
    if isinstance(layer, ConvLayer):
        return _plan_conv(layer, capacity)
    # Unknown compute layer: fall back to uniform splitting.
    factor = ceil_div(working_set, capacity)
    return TilingPlan(
        per_tile_bytes=capacity, tiling_factor=factor, refetch_bytes=0
    )


def _plan_dense(layer: DenseLayer, capacity: int) -> TilingPlan:
    """Tile a fully-connected layer over output features.

    The input vector stays resident; each tile holds a slice of the
    weight matrix plus its output slice.  Weights stream exactly once,
    so there is no refetch traffic.
    """
    resident = layer.input_bytes
    budget = max(capacity - resident, capacity // 4)
    per_out_feature = layer.weight_bytes // layer.out_features + 1
    out_per_tile = max(1, budget // per_out_feature)
    factor = ceil_div(layer.out_features, out_per_tile)
    per_tile = resident + out_per_tile * per_out_feature
    return TilingPlan(
        per_tile_bytes=min(per_tile, capacity),
        tiling_factor=factor,
        refetch_bytes=0,
    )


def _plan_conv(layer: ConvLayer, capacity: int) -> TilingPlan:
    """Tile a convolution over output rows and output channels.

    Preference order (matching Gemmini's mapper): keep all weights
    resident and tile the spatial extent; if the weights alone exceed
    the scratchpad, additionally tile output channels, which forces the
    input patch to be refetched once per channel tile.
    """
    if layer.weight_bytes <= capacity // 2:
        # Weights resident; split output rows.
        budget = capacity - layer.weight_bytes
        bytes_per_out_row = (
            layer.out_w * layer.out_ch
            + layer.in_w * layer.in_ch * layer.stride
        )
        rows_per_tile = max(1, budget // max(bytes_per_out_row, 1))
        factor = ceil_div(layer.out_h, rows_per_tile)
        per_tile = layer.weight_bytes + rows_per_tile * bytes_per_out_row
        return TilingPlan(
            per_tile_bytes=min(per_tile, capacity),
            tiling_factor=factor,
            refetch_bytes=0,
        )

    # Weights do not fit: tile output channels; each channel tile
    # re-reads the input activations.
    ch_tiles = ceil_div(layer.weight_bytes, capacity // 2)
    out_ch_per_tile = ceil_div(layer.out_ch, ch_tiles)
    weights_per_tile = (layer.weight_bytes * out_ch_per_tile) // layer.out_ch
    # Spatial split may still be needed for the activations.
    act_bytes = layer.input_bytes + (
        layer.output_bytes * out_ch_per_tile
    ) // layer.out_ch
    spatial_tiles = max(1, ceil_div(act_bytes, max(capacity - weights_per_tile, capacity // 4)))
    factor = ch_tiles * spatial_tiles
    per_tile = min(capacity, weights_per_tile + ceil_div(act_bytes, spatial_tiles))
    refetch = layer.input_bytes * (ch_tiles - 1)
    return TilingPlan(
        per_tile_bytes=per_tile, tiling_factor=factor, refetch_bytes=refetch
    )
