"""Compute model of a Gemmini-style weight-stationary systolic tile.

A 16x16 weight-stationary array performs up to 256 MACs/cycle.  Real
utilization depends on how a layer's dimensions map onto the array
(:func:`repro.models.layers.effective_pe_utilization`) and on the
pipeline-fill / tiling-edge derate (:attr:`TileConfig.compute_efficiency`).
Multiple tiles cooperating on one layer split the output space; the
split is near-linear for large layers but is capped by how much
parallel work the layer actually exposes.
"""

from __future__ import annotations

from repro.config import SoCConfig
from repro.models.layers import Layer, LayerKind, effective_pe_utilization

#: Minimum MACs a tile needs per assignment for multi-tile splitting to
#: pay off (below this, fill/drain dominates and extra tiles are idle).
_MIN_MACS_PER_TILE = 64 * 1024


def max_useful_tiles(layer: Layer, soc: SoCConfig) -> int:
    """How many tiles a layer can productively occupy.

    MEM layers are executed by a single tile's DMA (their time is
    bandwidth-bound anyway).  COMPUTE layers scale until the per-tile
    share of work drops below the fill/drain break-even point.
    """
    if layer.kind is LayerKind.MEM:
        return 1
    useful = max(1, layer.macs // _MIN_MACS_PER_TILE)
    return min(soc.num_tiles, useful)


def layer_compute_cycles(layer: Layer, soc: SoCConfig, num_tiles: int) -> float:
    """Ideal compute-only cycles for ``layer`` on ``num_tiles`` tiles.

    This is Algorithm 1's ``Compute_ideal = Total_MAC / num_PEs`` with
    the PE count derated by array utilization and compute efficiency,
    and the tile count clipped to what the layer can use.
    """
    if num_tiles <= 0:
        raise ValueError("num_tiles must be positive")
    if layer.kind is LayerKind.MEM or layer.macs == 0:
        return 0.0
    tiles = min(num_tiles, max_useful_tiles(layer, soc))
    util = effective_pe_utilization(
        layer, soc.tile.array_rows, soc.tile.array_cols
    )
    # Multi-tile cooperation scales sublinearly (input replication,
    # synchronization): speedup = tiles ** multi_tile_alpha.
    speedup = tiles ** soc.multi_tile_alpha
    macs_per_cycle = speedup * soc.tile.effective_macs_per_cycle * util
    return layer.macs / macs_per_cycle


def compute_cycles(layers, soc: SoCConfig, num_tiles: int) -> float:
    """Ideal compute-only cycles for a sequence of layers."""
    return sum(layer_compute_cycles(l, soc, num_tiles) for l in layers)
