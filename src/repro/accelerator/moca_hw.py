"""The MoCA hardware engine: access counter + thresholding module.

Port of the paper's Section III-B.  The real hardware is a pair of
lightweight finite-state machines in the accelerator's memory
interface:

- the **Access Counter** tracks memory requests issued during the
  current monitoring window;
- the **Thresholding Module** raises an alert once the count exceeds
  the window's ``threshold_load`` and inserts "bubbles" — cycles during
  which no further memory requests may issue — until the window
  expires or the runtime reconfigures the engine.

A ``(window, threshold_load)`` pair therefore enforces an average
memory-access rate of ``threshold_load / window`` requests per cycle.
``threshold_load == 0`` (with ``window == 0``) disables throttling
entirely, matching Algorithm 2 line 23.

The fluid simulator consumes only :meth:`MoCAHardwareEngine.allowed_rate`;
the cycle-level ``step``/``try_issue`` API exists so the FSM semantics
are testable against the paper's description.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cycles to apply a new (window, threshold) configuration — the paper
#: reports 5-10 cycles to reconfigure the DMA's issue rate; we use 8.
RECONFIG_CYCLES = 8


class MoCAHardwareError(ValueError):
    """Raised on invalid hardware configuration."""


@dataclass
class AccessCounter:
    """Counts memory requests within the current monitoring window."""

    count: int = 0

    def record(self, requests: int = 1) -> None:
        """Record issued memory requests."""
        if requests < 0:
            raise MoCAHardwareError("cannot record a negative request count")
        self.count += requests

    def reset(self) -> None:
        """Reset at a window boundary."""
        self.count = 0


@dataclass
class ThresholdingModule:
    """Raises the throttle alert when the counter exceeds its budget.

    Attributes:
        threshold_load: Allowed requests per window; 0 disables.
    """

    threshold_load: int = 0

    def alert(self, counter: AccessCounter) -> bool:
        """Whether the accumulated count has exhausted the budget."""
        if self.threshold_load <= 0:
            return False
        return counter.count >= self.threshold_load


@dataclass
class MoCAHardwareEngine:
    """The per-tile monitoring and throttling engine.

    The engine is driven one cycle at a time: the accelerator calls
    :meth:`try_issue` when it wants to send a memory request and
    :meth:`step` at the end of every cycle.  Between runtime
    reconfigurations it enforces at most ``threshold_load`` requests in
    every ``window``-cycle period.

    Attributes:
        window: Monitoring window length in cycles (0 = disabled).
        counter: The access counter FSM.
        thresholder: The thresholding FSM.
        cycles_into_window: Position within the current window.
        stalled: Whether the engine is currently inserting bubbles.
        total_issued: Lifetime requests issued (for validation).
        total_bubbles: Lifetime stall cycles inserted (for validation).
    """

    window: int = 0
    counter: AccessCounter = field(default_factory=AccessCounter)
    thresholder: ThresholdingModule = field(default_factory=ThresholdingModule)
    cycles_into_window: int = 0
    stalled: bool = False
    total_issued: int = 0
    total_bubbles: int = 0

    def configure(self, window: int, threshold_load: int) -> None:
        """Runtime reconfiguration (Algorithm 2 line 26).

        Resets the window and clears any active stall — the runtime has
        just granted a fresh budget.

        Args:
            window: New monitoring window in cycles; 0 disables
                throttling (then ``threshold_load`` must also be 0).
            threshold_load: Allowed requests per window.
        """
        if window < 0 or threshold_load < 0:
            raise MoCAHardwareError("window and threshold must be >= 0")
        if (window == 0) != (threshold_load == 0):
            raise MoCAHardwareError(
                "window and threshold_load must be enabled/disabled together"
            )
        self.window = window
        self.thresholder.threshold_load = threshold_load
        self.counter.reset()
        self.cycles_into_window = 0
        self.stalled = False

    @property
    def enabled(self) -> bool:
        """Whether throttling is active."""
        return self.window > 0 and self.thresholder.threshold_load > 0

    def allowed_rate(self) -> float:
        """Average allowed requests per cycle (inf when disabled)."""
        if not self.enabled:
            return float("inf")
        return self.thresholder.threshold_load / self.window

    def try_issue(self, requests: int = 1) -> bool:
        """Attempt to issue memory requests this cycle.

        Returns True and records the requests if the engine is not
        stalling; returns False (a bubble) otherwise.
        """
        if self.enabled and self.stalled:
            return False
        self.counter.record(requests)
        self.total_issued += requests
        if self.enabled and self.thresholder.alert(self.counter):
            self.stalled = True
        return True

    def step(self, cycles: int = 1) -> None:
        """Advance time; roll the window and lift stalls at boundaries."""
        if cycles < 0:
            raise MoCAHardwareError("cannot step a negative cycle count")
        if not self.enabled:
            return
        for _ in range(cycles):
            if self.stalled:
                self.total_bubbles += 1
            self.cycles_into_window += 1
            if self.cycles_into_window >= self.window:
                self.cycles_into_window = 0
                self.counter.reset()
                self.stalled = False
