"""DMA / memory-request-stream model.

Gemmini's decoupled access/execute front end issues load and store
requests to the shared memory system through its DMA.  The MoCA
hardware sits between the ld/st queues and the request generation
engine, so its units are *memory requests*, not bytes.  This module
converts between the two and models the request stream a layer block
produces, which is what the access counter observes and the
thresholding module regulates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.layers import ceil_div

#: Bytes moved per memory request (one TileLink beat-burst / DMA
#: transaction in the Gemmini SoC).
MEM_REQUEST_BYTES = 64


def bytes_to_requests(num_bytes: int) -> int:
    """Number of memory requests needed to move ``num_bytes``."""
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    if num_bytes == 0:
        return 0
    return ceil_div(num_bytes, MEM_REQUEST_BYTES)


def requests_to_bytes(num_requests: int) -> int:
    """Bytes moved by ``num_requests`` full memory requests."""
    if num_requests < 0:
        raise ValueError("request count must be non-negative")
    return num_requests * MEM_REQUEST_BYTES


@dataclass
class DmaModel:
    """Request-stream model of one tile's DMA engine.

    Attributes:
        issue_rate: Peak requests issued per cycle when unthrottled.
            A Gemmini DMA sustains roughly one 64 B request per 4
            cycles per tile against the L2.
    """

    issue_rate: float = 0.25

    def __post_init__(self) -> None:
        if self.issue_rate <= 0:
            raise ValueError("issue_rate must be positive")

    def requests_for(self, load_bytes: int, store_bytes: int) -> int:
        """Total requests for a (load, store) traffic pair."""
        return bytes_to_requests(load_bytes) + bytes_to_requests(store_bytes)

    def unthrottled_cycles(self, num_requests: int) -> float:
        """Cycles to issue ``num_requests`` at the peak issue rate."""
        if num_requests < 0:
            raise ValueError("request count must be non-negative")
        return num_requests / self.issue_rate

    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Bandwidth of one unthrottled DMA in bytes per cycle."""
        return self.issue_rate * MEM_REQUEST_BYTES
