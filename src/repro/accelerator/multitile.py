"""Multi-tenant instruction-level co-simulation.

Runs several tiles' instruction streams concurrently against the
shared DRAM: at every instruction boundary the active ``mvin``/``mvout``
transfers split the channel bandwidth (demand-proportionally, or capped
by per-app MoCA throttles), while ``compute`` instructions proceed
independently on each tile's array — the decoupled access/execute
behaviour at instruction granularity.

Purpose: an independent cross-check of the *fluid* engine's contention
model.  Both abstractions must agree on how much co-location stretches
memory-bound execution (see ``tests/test_multitile.py``), which is the
quantity every headline result rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.accelerator.isa import Instruction, Opcode, compute_rate_for
from repro.config import SoCConfig
from repro.memory.arbiter import allocate_bandwidth
from repro.models.layers import Layer

_EPS = 1e-9


@dataclass
class _AppState:
    """Progress of one co-running application's stream."""

    layer: Layer
    instructions: Sequence[Instruction]
    pc: int = 0
    remaining: float = 0.0          # bytes or MACs left in current ins
    load_done: Dict[int, bool] = field(default_factory=dict)
    compute_done: Dict[int, bool] = field(default_factory=dict)
    finish_time: Optional[float] = None

    def current(self) -> Optional[Instruction]:
        if self.pc >= len(self.instructions):
            return None
        return self.instructions[self.pc]


@dataclass(frozen=True)
class CoSimResult:
    """Per-application outcome of a co-simulation.

    Attributes:
        finish_times: App id -> completion cycle.
        makespan: Cycle the last app finished.
    """

    finish_times: Dict[str, float]
    makespan: float


class MultiTenantPipelineSim:
    """Instruction-granular co-simulation of tiles sharing DRAM.

    The model is deliberately simple — each app executes its stream in
    order, one instruction at a time, with transfers sharing the DRAM —
    because its job is validation, not speed.  For whole-scenario runs
    use :mod:`repro.sim.engine`.

    Attributes:
        soc: SoC configuration.
        dram_bandwidth: Shared channel bandwidth, bytes/cycle.
    """

    def __init__(self, soc: SoCConfig, dram_bandwidth: float) -> None:
        if dram_bandwidth <= 0:
            raise ValueError("dram_bandwidth must be positive")
        self.soc = soc
        self.dram_bandwidth = dram_bandwidth

    def run(
        self,
        apps: Mapping[str, tuple],
        caps: Optional[Mapping[str, float]] = None,
        max_events: int = 1_000_000,
    ) -> CoSimResult:
        """Co-run instruction streams to completion.

        Args:
            apps: App id -> ``(layer, instructions)``.
            caps: Optional per-app DRAM bandwidth caps (MoCA throttles).
            max_events: Safety bound on simulation events.

        Returns:
            The :class:`CoSimResult`.
        """
        if not apps:
            raise ValueError("no apps to simulate")
        states = {
            app: _AppState(layer=layer, instructions=list(stream))
            for app, (layer, stream) in apps.items()
        }
        for state in states.values():
            self._arm(state)

        now = 0.0
        events = 0
        while any(s.finish_time is None for s in states.values()):
            events += 1
            if events > max_events:
                raise RuntimeError("co-simulation exceeded event budget")

            # Current rates: DMA instructions share the DRAM; computes
            # run at their tile's array rate.
            demands: Dict[str, float] = {}
            for app, state in states.items():
                ins = state.current()
                if ins is not None and ins.op is not Opcode.COMPUTE:
                    demands[app] = self.dram_bandwidth
            shares = (
                allocate_bandwidth(demands, self.dram_bandwidth, caps)
                if demands else {}
            )

            # Time to each app's next instruction completion.
            dt = float("inf")
            for app, state in states.items():
                ins = state.current()
                if ins is None:
                    continue
                rate = self._rate(app, state, ins, shares)
                if rate <= 0:
                    continue
                dt = min(dt, state.remaining / rate)
            if dt == float("inf"):
                raise RuntimeError("co-simulation stalled")
            dt = max(dt, _EPS)

            # Advance everyone.
            now += dt
            for app, state in states.items():
                ins = state.current()
                if ins is None:
                    continue
                rate = self._rate(app, state, ins, shares)
                state.remaining -= rate * dt
                if state.remaining <= _EPS:
                    self._retire(state, ins)
                    self._arm(state)
                    if state.current() is None:
                        state.finish_time = now
        finish = {app: s.finish_time for app, s in states.items()}
        return CoSimResult(finish_times=finish, makespan=max(finish.values()))

    def _rate(self, app: str, state: _AppState, ins: Instruction,
              shares: Mapping[str, float]) -> float:
        if ins.op is Opcode.COMPUTE:
            return compute_rate_for(state.layer, self.soc)
        return shares.get(app, 0.0)

    @staticmethod
    def _retire(state: _AppState, ins: Instruction) -> None:
        if ins.op is Opcode.MVIN:
            state.load_done[ins.tile_index] = True
        elif ins.op is Opcode.COMPUTE:
            state.compute_done[ins.tile_index] = True
        state.pc += 1

    @staticmethod
    def _arm(state: _AppState) -> None:
        ins = state.current()
        if ins is None:
            return
        state.remaining = float(
            ins.macs if ins.op is Opcode.COMPUTE else ins.num_bytes
        )
        if state.remaining <= 0:
            state.pc += 1
            MultiTenantPipelineSim._arm(state)


def co_run_layers(
    soc: SoCConfig,
    dram_bandwidth: float,
    layers: Mapping[str, Layer],
    caps: Optional[Mapping[str, float]] = None,
) -> CoSimResult:
    """Convenience wrapper: lower each layer and co-run the streams."""
    from repro.accelerator.isa import lower_layer

    apps = {
        app: (layer, lower_layer(layer, soc))
        for app, layer in layers.items()
    }
    return MultiTenantPipelineSim(soc, dram_bandwidth).run(apps, caps)
