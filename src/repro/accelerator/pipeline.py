"""Decoupled access/execute pipeline model of one Gemmini tile.

Executes an :mod:`repro.accelerator.isa` instruction stream on two
resources — the DMA (shared memory path) and the systolic array — with
Gemmini's double-buffered decoupling: tile ``i+1``'s ``mvin`` overlaps
tile ``i``'s ``compute``, and ``mvout`` reuses the DMA after compute.

The MoCA hardware engine gates the DMA: when a ``(window,
threshold_load)`` throttle is configured, the DMA's sustained byte rate
is clamped to the engine's allowed request rate x 64 B, and the extra
cycles are accounted as bubbles — matching the cycle-level FSM without
stepping every cycle.

This model serves two purposes:

- an instruction-level cross-check of Algorithm 1: for a layer run in
  isolation, the pipeline's makespan must land near the analytical
  ``max(C, M) + overlap_f * min(C, M)`` prediction;
- a demonstration that throttling lengthens the *memory phase only*:
  compute instructions are never stalled by the engine, exactly the
  decoupling the paper's hardware exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.accelerator.dma import MEM_REQUEST_BYTES, DmaModel
from repro.accelerator.isa import Instruction, Opcode, compute_rate_for
from repro.accelerator.moca_hw import MoCAHardwareEngine
from repro.config import SoCConfig
from repro.models.layers import Layer


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of executing one instruction stream.

    Attributes:
        makespan: Total cycles from first fetch to last writeback.
        dma_busy: Cycles the DMA spent moving data.
        array_busy: Cycles the systolic array spent computing.
        throttle_bubbles: Extra DMA cycles inserted by the MoCA engine.
    """

    makespan: float
    dma_busy: float
    array_busy: float
    throttle_bubbles: float

    @property
    def dma_utilization(self) -> float:
        return self.dma_busy / self.makespan if self.makespan else 0.0

    @property
    def array_utilization(self) -> float:
        return self.array_busy / self.makespan if self.makespan else 0.0


class DecoupledPipeline:
    """Double-buffered access/execute executor for one tile.

    Attributes:
        soc: SoC configuration (array rate derates).
        dma: DMA issue model (peak request rate).
        engine: Optional MoCA throttle engine; when enabled, the DMA's
            sustained rate is clamped to its allowed request rate.
    """

    def __init__(
        self,
        soc: SoCConfig,
        dma: Optional[DmaModel] = None,
        engine: Optional[MoCAHardwareEngine] = None,
        dram_share_bytes_per_cycle: Optional[float] = None,
    ) -> None:
        self.soc = soc
        self.dma = dma if dma is not None else DmaModel(issue_rate=0.25)
        self.engine = engine
        if dram_share_bytes_per_cycle is not None and (
            dram_share_bytes_per_cycle <= 0
        ):
            raise ValueError("dram share must be positive")
        self.dram_share = dram_share_bytes_per_cycle

    def _dma_rate(self) -> float:
        """Sustained DMA bytes/cycle after throttling and DRAM share."""
        rate = self.dma.peak_bandwidth_bytes_per_cycle()
        if self.dram_share is not None:
            rate = min(rate, self.dram_share)
        if self.engine is not None and self.engine.enabled:
            rate = min(
                rate, self.engine.allowed_rate() * MEM_REQUEST_BYTES
            )
        return rate

    def _unthrottled_rate(self) -> float:
        rate = self.dma.peak_bandwidth_bytes_per_cycle()
        if self.dram_share is not None:
            rate = min(rate, self.dram_share)
        return rate

    def run(self, layer: Layer,
            instructions: Sequence[Instruction]) -> PipelineResult:
        """Execute the stream; returns the pipeline timing breakdown."""
        dma_rate = self._dma_rate()
        free_rate = self._unthrottled_rate()
        compute_rate = compute_rate_for(layer, self.soc)

        dma_free = 0.0       # when the DMA can accept the next move
        array_free = 0.0     # when the array can accept the next tile
        load_done = {}       # tile_index -> cycle its loads finished
        compute_done = {}    # tile_index -> cycle its compute finished
        dma_busy = 0.0
        array_busy = 0.0
        bubbles = 0.0
        end = 0.0

        for ins in instructions:
            if ins.op is Opcode.MVIN:
                duration = ins.num_bytes / dma_rate
                start = dma_free
                dma_free = start + duration
                load_done[ins.tile_index] = dma_free
                dma_busy += ins.num_bytes / free_rate
                bubbles += duration - ins.num_bytes / free_rate
                end = max(end, dma_free)
            elif ins.op is Opcode.COMPUTE:
                if compute_rate <= 0:
                    continue
                duration = ins.macs / compute_rate
                ready = load_done.get(ins.tile_index, 0.0)
                start = max(array_free, ready)
                array_free = start + duration
                compute_done[ins.tile_index] = array_free
                array_busy += duration
                end = max(end, array_free)
            elif ins.op is Opcode.MVOUT:
                duration = ins.num_bytes / dma_rate
                ready = compute_done.get(ins.tile_index, 0.0)
                start = max(dma_free, ready)
                dma_free = start + duration
                dma_busy += ins.num_bytes / free_rate
                bubbles += duration - ins.num_bytes / free_rate
                end = max(end, dma_free)
        return PipelineResult(
            makespan=end,
            dma_busy=dma_busy,
            array_busy=array_busy,
            throttle_bubbles=max(0.0, bubbles),
        )


def simulate_layer(
    layer: Layer,
    soc: SoCConfig,
    engine: Optional[MoCAHardwareEngine] = None,
    dram_share_bytes_per_cycle: Optional[float] = None,
) -> PipelineResult:
    """Lower a layer and execute it on the decoupled pipeline."""
    from repro.accelerator.isa import lower_layer

    pipeline = DecoupledPipeline(
        soc, engine=engine,
        dram_share_bytes_per_cycle=dram_share_bytes_per_cycle,
    )
    return pipeline.run(layer, lower_layer(layer, soc))
