"""Static compute partitioning baseline (Section IV-D, baseline 2).

The SoC's tiles are carved into fixed, equal slots at boot; each
arriving task occupies one free slot first-come-first-served and runs
to completion.  Nothing is ever repartitioned and the shared memory
system is left unmanaged — under contention each job's DRAM share is
whatever demand-proportional interleaving gives it.

This is also the "unmanaged co-location" configuration behind the
motivation study (Figure 1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.plan import EMPTY_PLAN, AllocationPlan
from repro.sim.policy import Policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.job import Job


class StaticPartitionPolicy(Policy):
    """Fixed equal tile slots, FCFS admission, no runtime management.

    Attributes:
        tiles_per_slot: Tiles in each static slot (default 2, giving
            four co-running workloads on the Table II SoC).
    """

    name = "static"

    def __init__(self, tiles_per_slot: int = 2) -> None:
        if tiles_per_slot <= 0:
            raise ValueError("tiles_per_slot must be positive")
        self.tiles_per_slot = tiles_per_slot

    def decide(self, sim: "Simulator") -> AllocationPlan:
        """Plan admissions into free slots in dispatch order."""
        free = sim.free_tiles
        admissions = []
        for job in sim.ready:
            if free < self.tiles_per_slot:
                break
            admissions.append((job.job_id, self.tiles_per_slot))
            free -= self.tiles_per_slot
        if not admissions:
            return EMPTY_PLAN
        # Built from live ready jobs: trusted skips re-validation.
        return AllocationPlan.trusted(admissions=tuple(admissions))

    def reset(self) -> None:
        """Stateless policy; nothing to clear."""
