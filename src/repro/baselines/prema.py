"""PREMA baseline (Choi & Rhu, HPCA 2020) — Section IV-D, baseline 1.

PREMA time-multiplexes the whole accelerator across DNNs with a
predictive, token-based priority scheduler:

- every waiting task accumulates *tokens* proportionally to its static
  priority and the time it has waited;
- when the accelerator becomes free (or a preemption fires), the task
  with the most tokens runs next on **all** compute resources;
- a running task is preempted at a layer (here: block) checkpoint when
  a waiting task's token count exceeds its own by the preemption
  threshold, paying the checkpoint/restore overhead.

Because execution is strictly temporal, co-location never causes
bandwidth contention — but short tasks queue behind long ones, which
is why PREMA trails every spatial scheme on SLA and STP in Figures
5-8.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.plan import EMPTY_PLAN, AllocationPlan
from repro.sim.policy import Policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.job import Job

#: Cycles to checkpoint + restore accelerator state on a preemption
#: (scratchpad/accumulator flush and refill over the memory system).
PREEMPTION_OVERHEAD_CYCLES = 50_000


class PremaPolicy(Policy):
    """Token-based temporal multiplexing of the full accelerator.

    Attributes:
        preemption_threshold: A waiting task preempts when its tokens
            exceed the running task's by this multiplicative factor.
        preemption_overhead: Checkpoint/restore stall charged to the
            incoming task on a preemptive switch.
    """

    name = "prema"

    def __init__(
        self,
        preemption_threshold: float = 2.0,
        preemption_overhead: int = PREEMPTION_OVERHEAD_CYCLES,
    ) -> None:
        if preemption_threshold < 1.0:
            raise ValueError("preemption_threshold must be >= 1")
        if preemption_overhead < 0:
            raise ValueError("preemption_overhead must be >= 0")
        self.preemption_threshold = preemption_threshold
        self.preemption_overhead = preemption_overhead
        self._preempted_by_us = False

    def tokens(self, job: "Job", now: float) -> float:
        """PREMA token count: tokens accrue proportionally to the
        task's priority for every cycle it waits (the paper's scheme —
        tokens are not normalized by job length, which is why short
        tasks queue behind long high-priority ones)."""
        waited = max(0.0, now - job.task.dispatch_cycle)
        return (job.task.priority + 1) * waited

    def decide(self, sim: "Simulator") -> AllocationPlan:
        """Keep exactly one job running; preempt at block checkpoints.

        A preemptive switch is one atomic plan: preempt the runner,
        admit the challenger onto every tile, and charge the
        checkpoint/restore overhead as an extra stall.
        """
        if sim.running:
            runner = sim.running[0]
            challenger = self._best_waiting(sim)
            if (
                challenger is not None
                and runner.at_block_boundary
                and not runner.is_stalled(sim.now)
                and self.tokens(challenger, sim.now)
                > self.preemption_threshold
                * max(self.tokens(runner, sim.now), 1e-12)
            ):
                # Built from live ready/running jobs: the trusted
                # constructor skips redundant re-validation.
                return AllocationPlan.trusted(
                    preemptions=(runner.job_id,),
                    admissions=((challenger.job_id, sim.soc.num_tiles),),
                    stalls=(
                        (challenger.job_id, self.preemption_overhead),
                    ),
                )
            return EMPTY_PLAN
        nxt = self._best_waiting(sim)
        if nxt is None:
            return EMPTY_PLAN
        stalls = ()
        if nxt.preemptions > 0:
            # A job resuming after a preemption pays the restore half
            # of the checkpoint overhead on re-admission.
            stalls = ((nxt.job_id, self.preemption_overhead),)
        return AllocationPlan.trusted(
            admissions=((nxt.job_id, sim.soc.num_tiles),), stalls=stalls
        )

    def _best_waiting(self, sim: "Simulator") -> Optional["Job"]:
        """The waiting job with the most tokens (stable tie-break)."""
        if not sim.ready:
            return None
        return max(
            sim.ready,
            key=lambda j: (
                self.tokens(j, sim.now),
                j.task.priority,
                -j.task.dispatch_cycle,
                j.job_id,
            ),
        )

    def reset(self) -> None:
        """Stateless between runs."""
