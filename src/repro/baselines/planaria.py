"""Planaria baseline (Ghodrati et al., MICRO 2020) — baseline 3.

Planaria spatially co-locates DNNs by *dynamic architecture fission*:
the accelerator's compute fabric is split into pods and the split is
re-derived whenever task urgency or the running set changes, driven by
each task's priority and deadline slack.  Memory resources are not
managed — each pod's DRAM share is whatever unmanaged interleaving
yields — and every repartition of a running task costs a
thread-migration stall (~1 M cycles, Section V-A), the overhead that
dominates light-model scenarios in the paper's Figure 5.

Reproduction notes: pods map to Gemmini tiles; the fission heuristic
is priority x urgency weighted apportionment with a minimum of one
tile per admitted task, re-evaluated at every scheduling event with
urgency quantized into buckets so repartitions fire at discrete
urgency transitions (as Planaria's epoch-based scheduler does).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.prediction import RemainingPrediction
from repro.sim.plan import EMPTY_PLAN, AllocationPlan
from repro.sim.policy import Policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.job import Job


class PlanariaPolicy(Policy):
    """Dynamic compute-only spatial partitioning.

    Attributes:
        max_concurrent: Most tasks co-located at once.
        min_tiles: Smallest pod granted to an admitted task.
    """

    name = "planaria"

    def __init__(self, max_concurrent: int = 4, min_tiles: int = 1) -> None:
        if max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if min_tiles <= 0:
            raise ValueError("min_tiles must be positive")
        self.max_concurrent = max_concurrent
        self.min_tiles = min_tiles
        self._predictor: Optional[RemainingPrediction] = None
        self._last_signature: tuple = ()

    # ------------------------------------------------------------------

    def decide(self, sim: "Simulator") -> AllocationPlan:
        """Admit by priority, then re-derive the fission as one plan."""
        if self._predictor is None:
            self._predictor = RemainingPrediction(sim.soc, sim.mem)

        admit = self._admission_order(sim)
        incumbents = list(sim.running)
        candidates = incumbents + admit
        if not candidates:
            return EMPTY_PLAN

        # Fission is re-derived only when its inputs change: the set of
        # co-running tasks, or a task becoming deadline-critical
        # (Planaria's scheduler runs on task events and deadline
        # epochs; re-deriving on every simulator event would cascade
        # the migration stalls unboundedly).
        signature = tuple(
            sorted(
                (j.job_id, self._urgency_bucket(sim, j)) for j in candidates
            )
        )
        if signature == self._last_signature and not admit:
            return EMPTY_PLAN
        self._last_signature = signature

        desired = self._fission_shares(sim, candidates)

        def wants_change(job: "Job") -> bool:
            # Pod-granularity hysteresis: a one-tile shrink is not
            # worth a 1 M-cycle migration; grows follow urgency.
            delta = desired[job.job_id] - job.tiles
            if delta == 0:
                return False
            if abs(delta) >= 2:
                return True
            return delta > 0 and self._urgency_bucket(sim, job) >= 2.0

        # Shrinks on running jobs free tiles for the newcomers, the
        # remainder funds the grows — the controller's canonical
        # application order; ``free`` mirrors it while planning.
        free = sim.free_tiles
        shrinks: List[tuple] = []
        grows: List[tuple] = []
        admissions: List[tuple] = []
        for job in incumbents:
            if desired[job.job_id] < job.tiles and wants_change(job):
                shrinks.append((job.job_id, desired[job.job_id]))
                free += job.tiles - desired[job.job_id]
        for job in admit:
            share = min(desired[job.job_id], free)
            if share >= self.min_tiles:
                admissions.append((job.job_id, share))
                free -= share
        for job in incumbents:
            if desired[job.job_id] > job.tiles and wants_change(job):
                grant = min(desired[job.job_id], job.tiles + free)
                if grant != job.tiles:
                    grows.append((job.job_id, grant))
                    free -= grant - job.tiles
        if not admissions and not shrinks and not grows:
            return EMPTY_PLAN
        # Built from live ready/running jobs with unique ids by
        # construction: the trusted constructor skips re-validation.
        return AllocationPlan.trusted(
            admissions=tuple(admissions),
            tiles=tuple(shrinks + grows),
        )

    def _admission_order(self, sim: "Simulator") -> List["Job"]:
        """Waiting tasks to admit, best priority/age first."""
        slots = self.max_concurrent - len(sim.running)
        if slots <= 0 or not sim.ready:
            return []
        ranked = sorted(
            sim.ready,
            key=lambda j: (
                -(j.task.priority + 1),
                j.task.dispatch_cycle,
                j.job_id,
            ),
        )
        return ranked[:slots]

    # ------------------------------------------------------------------

    def _urgency_bucket(self, sim: "Simulator", job: "Job") -> float:
        """Quantized urgency from deadline slack vs remaining work."""
        assert self._predictor is not None
        tiles = max(job.tiles, self.min_tiles)
        remain = self._predictor.remaining(
            job.task.cost, job.block_idx, tiles
        )
        slack = job.task.deadline - sim.now
        if slack <= 0 or remain <= 0:
            return 4.0
        ratio = slack / remain
        if ratio < 1.0:
            return 4.0
        if ratio < 2.0:
            return 2.0
        return 1.0

    def _fission_shares(
        self, sim: "Simulator", candidates: List["Job"]
    ) -> Dict[str, int]:
        """Apportion all tiles by priority x urgency (min 1 each)."""
        total = sim.soc.num_tiles
        weights = {
            j.job_id: (j.task.priority + 1) * self._urgency_bucket(sim, j)
            for j in candidates
        }
        weight_sum = sum(weights.values())
        # Largest-remainder apportionment with a floor of min_tiles.
        shares = {jid: self.min_tiles for jid in weights}
        spare = total - self.min_tiles * len(candidates)
        if spare < 0:
            # More candidates than tiles: the lowest-weight newcomers
            # simply wait (handled by the admission cap upstream).
            return shares
        quotas = {
            jid: spare * w / weight_sum for jid, w in weights.items()
        }
        for jid, quota in quotas.items():
            shares[jid] += int(quota)
        leftovers = spare - sum(int(q) for q in quotas.values())
        by_remainder = sorted(
            quotas, key=lambda jid: (quotas[jid] - int(quotas[jid]), jid),
            reverse=True,
        )
        for jid in by_remainder[:leftovers]:
            shares[jid] += 1
        return shares

    def reset(self) -> None:
        """Drop the prediction cache (new simulation)."""
        self._predictor = None
        self._last_signature = ()
