"""Baseline multi-tenancy policies the paper compares against."""

from repro.baselines.planaria import PlanariaPolicy
from repro.baselines.prema import PremaPolicy
from repro.baselines.static_partition import StaticPartitionPolicy

__all__ = ["PlanariaPolicy", "PremaPolicy", "StaticPartitionPolicy"]
