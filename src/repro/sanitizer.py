"""Runtime invariant sanitizer (``REPRO_CHECK=1``).

The static pass (:mod:`repro.devtools.lint`) proves what it can from
source: no unseeded RNGs, no unordered iteration feeding ordered
output, lock coverage over the thread-shared execution layer, frozen
value objects only mutated inside their own modules.  What it cannot
prove — that the vectorized solver really computes the scalar oracle's
floats, that a *trusted* plan really satisfies the validation it was
allowed to skip, that the work ledger's state machine stays coherent
across a lease/expire/steal interleaving — this module cross-checks at
runtime, behind one switch.

Set ``REPRO_CHECK=1`` in the environment (or call :func:`enable`) and
the guarded hot paths turn on their asserts:

- :meth:`repro.sim.engine.Simulator._times_now` spot-checks the
  vectorized block-time solve against the scalar oracle (first
  recompute, then every 64th — the bit-identical contract, sampled).
- :class:`repro.sim.plan.AllocationController` re-validates every
  trusted :class:`~repro.sim.plan.AllocationPlan` through the public
  constructor and the validated resolve before applying it — the
  checks :meth:`AllocationPlan.trusted` exists to skip.
- :class:`repro.experiments.execution.leases.WorkLedger` re-verifies
  its full state-machine invariant set after every mutating op.

Violations raise :class:`SanitizerError` (an ``AssertionError``
subclass: a sanitizer trip is always a bug in this codebase, never a
user error).  With the switch off the hooks cost one attribute read
and a branch — the sanitized CI tier runs the same simulations as the
unchecked tier and must produce byte-identical artifacts, which is
itself asserted in ``scripts/ci.sh``.
"""

from __future__ import annotations

import os

__all__ = [
    "SanitizerError",
    "disable",
    "enable",
    "enabled",
    "require",
]


class SanitizerError(AssertionError):
    """A runtime cross-check failed: two code paths that must agree
    disagreed, or an internal state machine broke its invariants.
    Always a bug in this codebase (file an issue with the traceback),
    never a user input problem."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CHECK", "") not in ("", "0")


#: Whether sanitized mode is on.  Read via ``sanitizer.enabled`` (a
#: live module attribute, so :func:`enable` in one test is seen by
#: already-imported hot paths).  Seeded from ``REPRO_CHECK`` at import.
enabled: bool = _env_enabled()


def enable() -> None:
    """Turn sanitized mode on for this process (tests use this
    instead of re-execing with ``REPRO_CHECK=1``)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn sanitized mode off again."""
    global enabled
    enabled = False


def require(condition: bool, message: str) -> None:
    """Raise :class:`SanitizerError` unless ``condition`` holds."""
    if not condition:
        raise SanitizerError(message)


def check_solver_agreement(
    vector: dict, scalar: dict, now: float
) -> None:
    """Assert the vectorized and scalar block-time solves agree
    exactly (same jobs, bit-identical floats)."""
    if vector == scalar:
        return
    extra = sorted(set(vector) - set(scalar))
    missing = sorted(set(scalar) - set(vector))
    if extra or missing:
        raise SanitizerError(
            f"solver divergence at t={now}: vector solve has "
            f"extra jobs {extra}, missing jobs {missing}"
        )
    for jid in sorted(scalar):
        if vector[jid] != scalar[jid]:
            raise SanitizerError(
                f"solver divergence at t={now}: job {jid!r} "
                f"vector={vector[jid]!r} scalar={scalar[jid]!r}"
            )
    raise SanitizerError(f"solver divergence at t={now}")


def check_kernel_agreement(
    kernel: dict, oracle: dict, now: float
) -> None:
    """Assert the horizon kernel's fused per-job block times match the
    single-step incremental oracle's solve exactly.

    ``kernel`` is the kernel's live per-job time map restricted to the
    jobs it solved this epoch; ``oracle`` is the engine's incremental
    solver (:meth:`~repro.sim.engine.Simulator._solve_vector`, itself
    spot-checked against the scalar reference) run on the same state.
    The kernel replicates the oracle's float sequence operation for
    operation, so the comparison is exact equality, not tolerance.
    """
    if kernel == oracle:
        return
    extra = sorted(set(kernel) - set(oracle))
    missing = sorted(set(oracle) - set(kernel))
    if extra or missing:
        raise SanitizerError(
            f"horizon-kernel divergence at t={now}: kernel solve has "
            f"extra jobs {extra}, missing jobs {missing}"
        )
    for jid in sorted(oracle):
        if kernel[jid] != oracle[jid]:
            raise SanitizerError(
                f"horizon-kernel divergence at t={now}: job {jid!r} "
                f"kernel={kernel[jid]!r} oracle={oracle[jid]!r}"
            )
    raise SanitizerError(f"horizon-kernel divergence at t={now}")
