"""MoCA reproduction: memory-centric adaptive multi-tenant DNN execution.

Python reproduction of Kim et al., "MoCA: Memory-Centric, Adaptive
Execution for Multi-Tenant Deep Neural Networks" (HPCA 2023).  See
README.md for the tour, DESIGN.md for the substitution argument, and
EXPERIMENTS.md for paper-vs-measured results.

The curated public API re-exported here covers the common workflow:
configure an SoC, pick a workload, run policies, score the outcome.
Deeper layers (the ISA substrate, the arbiter, per-figure experiments)
are imported from their subpackages.
"""

from repro.baselines import PlanariaPolicy, PremaPolicy, StaticPartitionPolicy
from repro.config import DEFAULT_SOC, SoCConfig, TileConfig
from repro.core.latency import estimate_layer, estimate_network
from repro.core.policy import MoCAPolicy
from repro.core.runtime import MoCARuntime, RuntimeDecision
from repro.core.scheduler import MoCAScheduler, SchedulerConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.metrics import MetricsSummary, summarize
from repro.models.graph import Network
from repro.models.zoo import build_model, model_names, workload_set
from repro.sim.engine import SimResult, Simulator, run_simulation
from repro.sim.job import Task, TaskResult
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SOC",
    "MemoryHierarchy",
    "MetricsSummary",
    "MoCAPolicy",
    "MoCARuntime",
    "MoCAScheduler",
    "Network",
    "PlanariaPolicy",
    "PremaPolicy",
    "QosLevel",
    "QosModel",
    "RuntimeDecision",
    "SchedulerConfig",
    "SimResult",
    "Simulator",
    "SoCConfig",
    "StaticPartitionPolicy",
    "Task",
    "TaskResult",
    "TileConfig",
    "WorkloadConfig",
    "WorkloadGenerator",
    "build_model",
    "estimate_layer",
    "estimate_network",
    "model_names",
    "run_simulation",
    "summarize",
    "workload_set",
]
