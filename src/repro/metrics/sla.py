"""SLA satisfaction rate (Section IV-C a).

A task satisfies its SLA when its dispatch-to-commit latency — queue
wait plus runtime — is within its QoS target.  Besides the overall
rate, Figure 6 reports the rate per priority group (p-Low 0-2,
p-Mid 3-8, p-High 9-11).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.sim.job import TaskResult
from repro.sim.workload import PRIORITY_GROUPS, priority_group


def sla_satisfaction_rate(results: Sequence[TaskResult]) -> float:
    """Fraction of tasks that met their SLA target."""
    if not results:
        raise ValueError("no results to score")
    met = sum(1 for r in results if r.met_sla)
    return met / len(results)


def sla_by_priority_group(
    results: Sequence[TaskResult],
) -> Dict[str, float]:
    """SLA satisfaction rate per Figure 6 priority group.

    Groups with no tasks are omitted from the result.
    """
    if not results:
        raise ValueError("no results to score")
    counts: Dict[str, int] = {g: 0 for g in PRIORITY_GROUPS}
    met: Dict[str, int] = {g: 0 for g in PRIORITY_GROUPS}
    for r in results:
        group = priority_group(r.priority)
        counts[group] += 1
        if r.met_sla:
            met[group] += 1
    return {
        g: met[g] / counts[g] for g in PRIORITY_GROUPS if counts[g] > 0
    }
