"""Evaluation metrics (Section IV-C): SLA, STP, fairness."""

from repro.metrics.fairness import fairness, proportional_progress
from repro.metrics.sla import sla_by_priority_group, sla_satisfaction_rate
from repro.metrics.summary import MetricsSummary, summarize
from repro.metrics.throughput import system_throughput

__all__ = [
    "MetricsSummary",
    "fairness",
    "proportional_progress",
    "sla_by_priority_group",
    "sla_satisfaction_rate",
    "summarize",
    "system_throughput",
]
