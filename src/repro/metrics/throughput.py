"""System throughput — STP (Section IV-C c, Equation 2).

``STP = sum_i C_single_i / C_MT_i``: each program's normalized
progress, summed over the co-located programs.  ``C_single`` is the
task's latency running alone on the SoC; ``C_MT`` its measured
multi-tenant latency (queue wait included, as the paper measures from
dispatch to commit).  STP ranges from ~1 (fully serialized) towards n
(perfect co-location of n programs).

For scenario-level reporting across hundreds of sequential queries we
normalize the sum to the *average concurrency* the scenario offers, so
numbers are comparable across scenarios of different length; the raw
Equation 2 sum is also available.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.job import TaskResult


def system_throughput(results: Sequence[TaskResult]) -> float:
    """Raw Equation 2: summed normalized progress."""
    if not results:
        raise ValueError("no results to score")
    return sum(r.isolated_cycles / r.latency for r in results)


def normalized_progress_mean(results: Sequence[TaskResult]) -> float:
    """Mean per-task normalized progress (STP / n)."""
    return system_throughput(results) / len(results)
