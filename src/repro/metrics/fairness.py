"""Fairness (Section IV-C b, Equation 1).

The paper uses priority-weighted *proportional progress*:

    PP_i = (C_single_i / C_MT_i) / (Priority_i / sum_j Priority_j)

    Fairness = min_{i,j} PP_i / PP_j  =  min(PP) / max(PP)

A fairness of 1 means every program progressed exactly in proportion
to its priority share; values below 1 quantify the worst imbalance.

Reproduction note: the paper's priority scale starts at 0, which would
zero a task's fair share; we weight by ``priority + 1`` (documented in
DESIGN.md §6) so every task owns a positive share, matching how the
Prema/Planaria fairness studies handle their lowest level.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.sim.job import TaskResult


def proportional_progress(
    results: Sequence[TaskResult],
) -> Dict[str, float]:
    """Per-task PP_i values keyed by task id."""
    if not results:
        raise ValueError("no results to score")
    weight_sum = float(sum(r.priority + 1 for r in results))
    pp: Dict[str, float] = {}
    for r in results:
        progress = r.isolated_cycles / r.latency
        share = (r.priority + 1) / weight_sum
        pp[r.task_id] = progress / share
    return pp


def fairness(results: Sequence[TaskResult]) -> float:
    """Equation 1: min-over-pairs ratio of proportional progress."""
    pp = proportional_progress(results)
    values = list(pp.values())
    return min(values) / max(values)
