"""Scenario-level metric bundle used by every experiment."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.metrics.fairness import fairness
from repro.metrics.sla import sla_by_priority_group, sla_satisfaction_rate
from repro.metrics.throughput import normalized_progress_mean, system_throughput
from repro.sim.job import TaskResult


@dataclass(frozen=True)
class MetricsSummary:
    """All Section IV-C metrics for one simulated scenario.

    Attributes:
        policy: Policy name.
        num_tasks: Tasks evaluated.
        sla_rate: Overall SLA satisfaction rate.
        sla_by_group: SLA satisfaction per priority group.
        stp: Raw Equation 2 system throughput.
        stp_normalized: STP divided by task count (mean normalized
            progress), comparable across scenario sizes.
        fairness: Equation 1 fairness.
        mean_slowdown: Mean multi-tenant slowdown vs isolated.
        p99_slowdown: 99th-percentile slowdown.
    """

    policy: str
    num_tasks: int
    sla_rate: float
    sla_by_group: Dict[str, float]
    stp: float
    stp_normalized: float
    fairness: float
    mean_slowdown: float
    p99_slowdown: float

    def to_dict(self) -> dict:
        """The bundle as JSON-ready primitives.

        Iterates ``dataclasses.fields`` so metrics added later are
        exported automatically instead of silently escaping the sweep
        export files and shard partial artifacts that serialise
        through here.  Floats pass through untouched — JSON round-trips
        Python floats exactly, so :meth:`from_dict` rebuilds a bundle
        that compares equal bit-for-bit.
        """
        out = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            out[field.name] = (
                dict(value) if isinstance(value, dict) else value
            )
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSummary":
        """Rebuild a bundle from :meth:`to_dict` output (exact).

        Value types are validated so a corrupt document (a metric
        stored as a string, a priority table where a dict belongs)
        refuses here with a ValueError instead of crashing later in
        whatever arithmetic first touches the bad field.
        """
        kwargs = {}
        for field in dataclasses.fields(cls):
            value = payload[field.name]
            if field.type in ("int", int):
                ok = isinstance(value, int) and not isinstance(value, bool)
            elif field.type in ("float", float):
                ok = (
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                )
            elif field.type in ("str", str):
                ok = isinstance(value, str)
            else:  # sla_by_group
                ok = isinstance(value, dict)
            if not ok:
                raise ValueError(
                    f"metric field {field.name!r} has wrong type "
                    f"{type(value).__name__} (corrupt document?)"
                )
            kwargs[field.name] = (
                dict(value) if isinstance(value, dict) else value
            )
        return cls(**kwargs)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("no values")
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def summarize(policy: str, results: Sequence[TaskResult]) -> MetricsSummary:
    """Compute the full metric bundle for one run."""
    slowdowns = sorted(r.slowdown for r in results)
    return MetricsSummary(
        policy=policy,
        num_tasks=len(results),
        sla_rate=sla_satisfaction_rate(results),
        sla_by_group=sla_by_priority_group(results),
        stp=system_throughput(results),
        stp_normalized=normalized_progress_mean(results),
        fairness=fairness(results),
        mean_slowdown=sum(slowdowns) / len(slowdowns),
        p99_slowdown=_percentile(slowdowns, 0.99),
    )
