"""Command-line entry point: regenerate any paper figure or table.

Usage::

    python -m repro.cli fig1 [--trials 300]
    python -m repro.cli fig5 [--tasks 250] [--seeds 1,2,3]
    python -m repro.cli fig6 | fig7 | fig8
    python -m repro.cli table4
    python -m repro.cli validate
    python -m repro.cli sweep --list
    python -m repro.cli sweep --scenarios bursty-mixed,diurnal-light --workers 2
    python -m repro.cli sweep --scenarios bursty-mixed --out results/ --format json,csv
    python -m repro.cli all       # everything, EXPERIMENTS.md style
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from typing import List, Optional, Tuple

from repro.experiments.fig1_motivation import format_fig1, run_fig1
from repro.experiments.fig5_sla import format_fig5, run_fig5
from repro.experiments.fig6_priority import format_fig6
from repro.experiments.fig7_stp import format_fig7
from repro.experiments.fig8_fairness import format_fig8
from repro.experiments.table4_area import format_table4
from repro.experiments.validation import format_validation, run_validation


def _parse_seeds(text: str) -> Tuple[int, ...]:
    """Parse ``--seeds 1,2,3`` — validated up front so empty or
    malformed values exit with a clean argparse error (prefixed with
    the subcommand, like every other argument error) instead of a
    traceback deep inside the run."""
    entries = [s.strip() for s in text.split(",")]
    if not any(entries):
        raise argparse.ArgumentTypeError(
            "expected comma-separated integer seeds, got an empty value"
        )
    seeds = []
    for entry in entries:
        if not entry:
            raise argparse.ArgumentTypeError(
                f"empty entry in seed list {text!r} "
                f"(trailing or doubled comma?)"
            )
        try:
            seed = int(entry)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid seed {entry!r}: expected an integer"
            ) from None
        if seed < 0:
            raise argparse.ArgumentTypeError(
                f"invalid seed {seed}: seeds must be >= 0"
            )
        seeds.append(seed)
    return tuple(seeds)


def _parse_names(text: str) -> Tuple[str, ...]:
    """Parse ``--scenarios a,b`` with the same up-front validation."""
    entries = [s.strip() for s in text.split(",")]
    if not any(entries):
        raise argparse.ArgumentTypeError(
            "expected comma-separated names, got an empty value"
        )
    if not all(entries):
        raise argparse.ArgumentTypeError(
            f"empty entry in name list {text!r} "
            f"(trailing or doubled comma?)"
        )
    return tuple(entries)


#: Supported sweep export format names.
_EXPORT_FORMATS = ("json", "csv")


def _parse_formats(text: str) -> Tuple[str, ...]:
    """Parse ``--format json,csv`` (deduplicated, order preserved)."""
    names = _parse_names(text)
    unknown = [n for n in names if n not in _EXPORT_FORMATS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown format(s) {unknown}; choose from "
            f"{', '.join(_EXPORT_FORMATS)}"
        )
    return tuple(dict.fromkeys(names))


def _export_filename(label: str) -> str:
    """Filesystem-safe stem for a scenario label (labels like
    ``Workload-A/QoS-M`` contain path separators)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", label)


def _write_sweep_exports(matrix, specs, out_dir, formats) -> List[str]:
    """Write per-scenario export files (plus the cell manifest).

    One ``<scenario>.<format>`` file per scenario per requested
    format, and a ``manifest.json`` describing every cell of the
    sweep.  Exports are deterministic, so a streaming (``--workers
    N``) run writes byte-identical files to a serial one —
    ``scripts/ci.sh`` gates on exactly that.

    Returns:
        The written paths, in write order.
    """
    import json
    from pathlib import Path

    from repro.experiments.results import cell_manifest
    from repro.reporting import sweep_to_csv, sweep_to_json

    exporters = {"json": sweep_to_json, "csv": sweep_to_csv}
    stems = {"manifest": "(the reserved manifest.json)"}
    for label in matrix:
        stem = _export_filename(label)
        if stem in stems:
            raise SystemExit(
                f"sweep: scenario labels {stems[stem]!r} and "
                f"{label!r} both export as {stem!r}; rename one "
                f"to avoid overwriting its files"
            )
        stems[stem] = label
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for label, cell in matrix.items():
        for fmt in formats:
            path = out / f"{_export_filename(label)}.{fmt}"
            path.write_text(exporters[fmt]({label: cell}))
            written.append(str(path))
    manifest_path = out / "manifest.json"
    manifest_path.write_text(
        json.dumps(cell_manifest(specs), indent=2, sort_keys=True) + "\n"
    )
    written.append(str(manifest_path))
    return written


def _run_sweep(args) -> str:
    """The ``sweep`` subcommand: registry scenarios -> summary tables,
    optionally exported as per-scenario JSON/CSV artifacts."""
    from dataclasses import replace

    from repro.experiments.runner import run_matrix
    from repro.reporting import per_scenario_summary
    from repro.scenarios import format_scenario_table, get_scenario

    if args.list_scenarios:
        return format_scenario_table()
    if not args.scenarios:
        raise SystemExit(
            "sweep: pass --scenarios NAME[,NAME...] or --list "
            "(e.g. --scenarios bursty-mixed,diurnal-light)"
        )
    if args.workers < 0:
        raise SystemExit("sweep: --workers must be >= 0 (0 = one per CPU)")
    if args.formats is not None and args.out is None:
        raise SystemExit("sweep: --format requires --out DIR")
    specs = []
    for name in args.scenarios:
        try:
            spec = get_scenario(name)
        except KeyError as exc:
            raise SystemExit(f"sweep: {exc.args[0]}") from exc
        overrides = {}
        if args.tasks is not None:
            overrides["num_tasks"] = args.tasks
        if args.seeds is not None:
            overrides["seeds"] = args.seeds
        try:
            specs.append(replace(spec, **overrides) if overrides else spec)
        except ValueError as exc:
            raise SystemExit(f"sweep: bad override for {name}: {exc}") from exc
    # Usage errors get clean one-liners; errors raised *inside* the
    # simulation keep their tracebacks.
    from repro.experiments.runner import check_unique_labels

    try:
        check_unique_labels(specs)
    except ValueError as exc:
        raise SystemExit(f"sweep: {exc}") from exc
    matrix = run_matrix(specs, workers=args.workers)
    if args.out is not None:
        written = _write_sweep_exports(
            matrix, specs, args.out, args.formats or _EXPORT_FORMATS
        )
        print(
            f"sweep: wrote {len(written)} file(s) to {args.out}",
            file=sys.stderr,
        )
    return per_scenario_summary(matrix)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MoCA (HPCA 2023) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig1 = sub.add_parser("fig1", help="motivation: co-location slowdown")
    p_fig1.add_argument("--trials", type=int, default=300)
    p_fig1.add_argument("--seed", type=int, default=0)

    for name in ("fig5", "fig6", "fig7", "fig8"):
        p = sub.add_parser(name, help=f"paper {name} matrix")
        p.add_argument("--tasks", type=int, default=250)
        p.add_argument("--seeds", type=_parse_seeds, default=(1, 2, 3))
        p.add_argument(
            "--workers", type=int, default=1,
            help="worker processes for the matrix cells "
                 "(1 = serial, 0 = one per CPU)",
        )

    sub.add_parser("table4", help="area breakdown")
    sub.add_parser("validate", help="latency-model validation")
    sub.add_parser("models", help="list the benchmark DNN zoo (Table III)")

    p_sweeps = sub.add_parser(
        "sweeps",
        help="SoC configuration sensitivity sweeps (appendix F) — "
             "unrelated to the scenario-registry 'sweep' command",
    )
    p_sweeps.add_argument("--tasks", type=int, default=80)
    p_sweeps.add_argument("--seeds", type=_parse_seeds, default=(1, 2))

    p_sweep = sub.add_parser(
        "sweep",
        help="run named scenario-registry entries across all policies "
             "(not the SoC 'sweeps' command)",
        description=(
            "Run scenarios from the registry (repro.scenarios) across "
            "the four policies and print a per-scenario summary table. "
            "Serial (--workers 1) and parallel (--workers N) runs are "
            "bit-identical; --list shows the registered scenarios."
        ),
    )
    p_sweep.add_argument(
        "--scenarios", type=_parse_names, default=(),
        metavar="NAME[,NAME...]",
        help="comma-separated registry names (see --list)",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the matrix cells "
             "(1 = serial, 0 = one per CPU)",
    )
    p_sweep.add_argument(
        "--tasks", type=int, default=None,
        help="override every scenario's num_tasks",
    )
    p_sweep.add_argument(
        "--seeds", type=_parse_seeds, default=None,
        help="override every scenario's seeds (comma-separated)",
    )
    p_sweep.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list registered scenarios and exit",
    )
    p_sweep.add_argument(
        "--out", default=None, metavar="DIR",
        help="write per-scenario export files (plus manifest.json) "
             "into DIR",
    )
    p_sweep.add_argument(
        "--format", type=_parse_formats, default=None,
        dest="formats", metavar="FMT[,FMT...]",
        help="export formats for --out: json,csv (default: both); "
             "requires --out",
    )

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--tasks", type=int, default=250)
    p_all.add_argument("--seeds", type=_parse_seeds, default=(1, 2, 3))
    p_all.add_argument("--trials", type=int, default=300)
    p_all.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the matrix cells "
             "(1 = serial, 0 = one per CPU)",
    )
    return parser


def _format_models() -> str:
    """Table III as text: the zoo with sizes and workload sets."""
    from repro.models.zoo import WORKLOAD_SETS, build_model, model_names

    lines = [
        f"{'model':<12s}{'domain':<24s}{'layers':>7s}{'GMACs':>8s}"
        f"{'params MB':>11s}{'sets':>7s}"
    ]
    for name in model_names():
        net = build_model(name)
        sets = "".join(
            s for s, members in WORKLOAD_SETS.items() if name in members
        )
        lines.append(
            f"{name:<12s}{net.domain:<24s}{len(net):>7d}"
            f"{net.total_macs / 1e9:>8.2f}"
            f"{net.total_weight_bytes / 1e6:>11.2f}{sets:>7s}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    start = time.time()

    if args.command == "fig1":
        print(format_fig1(run_fig1(trials=args.trials, seed=args.seed)))
    elif args.command in ("fig5", "fig6", "fig7", "fig8"):
        matrix = run_fig5(
            num_tasks=args.tasks, seeds=args.seeds, workers=args.workers
        )
        formatter = {
            "fig5": format_fig5,
            "fig6": format_fig6,
            "fig7": format_fig7,
            "fig8": format_fig8,
        }[args.command]
        print(formatter(matrix))
    elif args.command == "table4":
        print(format_table4())
    elif args.command == "validate":
        print(format_validation(run_validation()))
    elif args.command == "models":
        print(_format_models())
    elif args.command == "sweep":
        print(_run_sweep(args))
    elif args.command == "sweeps":
        from repro.experiments.sweeps import (
            format_sweep,
            sweep_dram_bandwidth,
            sweep_l2_capacity,
            sweep_num_tiles,
        )

        for title, sweep in (
            ("DRAM bandwidth sweep:", sweep_dram_bandwidth),
            ("L2 capacity sweep:", sweep_l2_capacity),
            ("Tile count sweep:", sweep_num_tiles),
        ):
            print(format_sweep(
                title,
                sweep(num_tasks=args.tasks, seeds=args.seeds),
            ))
            print()
    elif args.command == "all":
        print(format_fig1(run_fig1(trials=args.trials)))
        print()
        matrix = run_fig5(
            num_tasks=args.tasks, seeds=args.seeds, workers=args.workers
        )
        for fmt in (format_fig5, format_fig6, format_fig7, format_fig8):
            print(fmt(matrix))
            print()
        print(format_table4())
        print()
        print(format_validation(run_validation()))
    print(f"\n[{args.command} completed in {time.time() - start:.1f}s]",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
