"""Command-line entry point: regenerate any paper figure or table.

Usage::

    python -m repro.cli fig1 [--trials 300]
    python -m repro.cli fig5 [--tasks 250] [--seeds 1,2,3]
    python -m repro.cli fig6 | fig7 | fig8
    python -m repro.cli table4
    python -m repro.cli validate
    python -m repro.cli sweep --list
    python -m repro.cli sweep --scenarios bursty-mixed,diurnal-light --workers 2
    python -m repro.cli sweep --scenarios 'bursty-*,ref-*-qos-h' --decisions
    python -m repro.cli sweep --scenarios bursty-mixed --cadence block-boundary
    python -m repro.cli sweep --scenarios bursty-mixed --out results/ --format json,csv
    python -m repro.cli sweep --scenarios bursty-mixed --shard 1/2 --out shards/
    python -m repro.cli sweep --scenarios bursty-mixed --out r/ --max-retries 3 --cell-timeout 600
    python -m repro.cli sweep --resume r/     # re-run only the missing cells
    python -m repro.cli sweep --scenarios bursty-mixed --out r/ --serve   # coordinator
    python -m repro.cli sweep --worker http://127.0.0.1:PORT              # worker(s)
    python -m repro.cli sweep --resume r/ --serve   # re-serve only the missing cells
    python -m repro.cli merge shards/ --out merged/
    python -m repro.cli all       # everything, EXPERIMENTS.md style

Sweep exit codes (stable, scriptable)::

    0   complete — every cell ran to a result (for --serve: every
        cell drained; for --worker: the coordinator reported drained)
    3   degraded — the sweep finished, but persistently failing
        cells were quarantined (re-run them with sweep --resume DIR)
    1   hard error — usage errors, refused directories, unreadable
        artifacts; nothing was partially delivered
    86  a worker killed by an injected crash fault (--inject-faults
        'crash:...' in --worker mode treats the whole process as the
        disposable unit; the coordinator re-leases its cells)
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from typing import List, Optional, Tuple

from repro.experiments.fig1_motivation import format_fig1, run_fig1
from repro.experiments.fig5_sla import format_fig5, run_fig5
from repro.experiments.fig6_priority import format_fig6
from repro.experiments.fig7_stp import format_fig7
from repro.experiments.fig8_fairness import format_fig8
from repro.experiments.table4_area import format_table4
from repro.experiments.validation import format_validation, run_validation


def _parse_seeds(text: str) -> Tuple[int, ...]:
    """Parse ``--seeds 1,2,3`` — validated up front so empty or
    malformed values exit with a clean argparse error (prefixed with
    the subcommand, like every other argument error) instead of a
    traceback deep inside the run."""
    entries = [s.strip() for s in text.split(",")]
    if not any(entries):
        raise argparse.ArgumentTypeError(
            "expected comma-separated integer seeds, got an empty value"
        )
    seeds = []
    for entry in entries:
        if not entry:
            raise argparse.ArgumentTypeError(
                f"empty entry in seed list {text!r} "
                f"(trailing or doubled comma?)"
            )
        try:
            seed = int(entry)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid seed {entry!r}: expected an integer"
            ) from None
        if seed < 0:
            raise argparse.ArgumentTypeError(
                f"invalid seed {seed}: seeds must be >= 0"
            )
        seeds.append(seed)
    return tuple(seeds)


def _parse_names(text: str) -> Tuple[str, ...]:
    """Parse ``--scenarios a,b`` with the same up-front validation."""
    entries = [s.strip() for s in text.split(",")]
    if not any(entries):
        raise argparse.ArgumentTypeError(
            "expected comma-separated names, got an empty value"
        )
    if not all(entries):
        raise argparse.ArgumentTypeError(
            f"empty entry in name list {text!r} "
            f"(trailing or doubled comma?)"
        )
    return tuple(entries)


def _expand_scenario_patterns(names) -> List[str]:
    """Expand glob patterns in ``--scenarios`` against the registry.

    Entries containing ``*``, ``?`` or ``[`` are :mod:`fnmatch`
    patterns resolved against the registered scenario names (in
    registration order, so expansion is deterministic); plain names
    pass through untouched (unknown ones still fail with the
    registry's "unknown scenario" message).  Patterns matching
    nothing are collected and refused in one clean error.  The
    expanded list is deduplicated (overlapping patterns would
    otherwise trip the duplicate-label check downstream), preserving
    first occurrence.
    """
    import fnmatch

    from repro.scenarios import scenario_names

    known = scenario_names()
    out: List[str] = []
    unmatched: List[str] = []
    for name in names:
        if any(ch in name for ch in "*?["):
            matches = [
                n for n in known if fnmatch.fnmatchcase(n, name)
            ]
            if not matches:
                unmatched.append(name)
            out.extend(matches)
        else:
            out.append(name)
    if unmatched:
        raise SystemExit(
            f"sweep: pattern(s) "
            f"{', '.join(repr(p) for p in unmatched)} match no "
            f"registered scenarios (see sweep --list)"
        )
    return list(dict.fromkeys(out))


def _parse_cadence(text: str):
    """Parse ``--cadence`` into a validated cadence key (clean
    argparse errors for unknown modes or malformed intervals)."""
    from repro.sim.plan import DecisionCadence

    try:
        return DecisionCadence.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


#: Supported sweep export format names.
_EXPORT_FORMATS = ("json", "csv")

#: ``sweep`` exit codes — documented in the module docstring and the
#: README's "Failure semantics" section; asserted in tests/test_cli.py.
EXIT_OK = 0
EXIT_HARD_ERROR = 1
EXIT_DEGRADED = 3


def _parse_fault_plan(text: str):
    """Parse ``--inject-faults`` (see repro.experiments.faults) with
    clean argparse errors for malformed specs."""
    from repro.experiments.faults import FaultPlan

    try:
        return FaultPlan.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_formats(text: str) -> Tuple[str, ...]:
    """Parse ``--format json,csv`` (deduplicated, order preserved)."""
    names = _parse_names(text)
    unknown = [n for n in names if n not in _EXPORT_FORMATS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown format(s) {unknown}; choose from "
            f"{', '.join(_EXPORT_FORMATS)}"
        )
    return tuple(dict.fromkeys(names))


def _parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``--shard I/N`` (1-based I) to a 0-based (index, count)."""
    match = re.fullmatch(r"\s*(\d+)\s*/\s*(\d+)\s*", text)
    if not match:
        raise argparse.ArgumentTypeError(
            f"expected I/N (e.g. 1/4), got {text!r}"
        )
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1:
        raise argparse.ArgumentTypeError("shard count must be >= 1")
    if not 1 <= index <= count:
        raise argparse.ArgumentTypeError(
            f"shard index {index} outside 1..{count}"
        )
    return index - 1, count


def _export_filename(label: str) -> str:
    """Filesystem-safe stem for a scenario label (labels like
    ``Workload-A/QoS-M`` contain path separators)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", label)


def _ensure_out_dir(out_dir, force: bool, prog: str,
                    allow_non_empty: bool = False,
                    create: bool = True):
    """Create (or vet) an export directory — vetting only, no deletion.

    ISSUE bugfix: an existing directory with prior artifacts used to
    be clobbered without warning.  A non-empty directory is now
    refused unless ``--force`` was passed; empty or absent
    directories are created silently.  Called *before* the run so a
    refusal cannot discard computed results; the actual cleanup of
    prior artifacts is :func:`_clean_out_dir`, deferred until the
    new results exist.  ``allow_non_empty`` skips the emptiness check
    (the shard path shares one directory across N partials and guards
    only its own file).  ``create=False`` vets without mkdir — the
    pre-sweep check must not leave a stray empty directory behind
    when the run itself later fails (the export writer creates the
    directory once results exist).
    """
    from pathlib import Path

    out = Path(out_dir)
    if out.exists() and not out.is_dir():
        raise SystemExit(
            f"{prog}: --out {out} exists and is not a directory"
        )
    if out.exists() and not force and not allow_non_empty:
        existing = sorted(p.name for p in out.iterdir())
        if existing:
            from repro.experiments.sharding import JOURNAL_NAME

            hint = "pass --force to overwrite"
            if JOURNAL_NAME in existing:
                hint = (
                    f"an interrupted sweep left a checkpoint journal "
                    f"here — continue it with "
                    f"'sweep --resume {out}', or pass --force to "
                    f"start over"
                )
            raise SystemExit(
                f"{prog}: output directory {out} already contains "
                f"{len(existing)} entr{'y' if len(existing) == 1 else 'ies'} "
                f"(e.g. {existing[0]!r}); {hint}"
            )
    if create:
        out.mkdir(parents=True, exist_ok=True)
    return out


def _clean_out_dir(out_dir) -> None:
    """Remove the prior export artifacts this tool itself wrote.

    A ``--force`` re-export with different scenarios must not leave
    stale files mixed into the new artifact set — but it must also
    not delete unrelated files (``--out .`` would otherwise eat any
    JSON/CSV in the working directory).  The prior ``manifest.json``
    names exactly the scenarios the previous export wrote, so
    deletion is scoped to those stems plus the manifest itself;
    without a parseable prior manifest nothing is removed (same-named
    files are still overwritten by the write that follows).
    Deliberately called only once the new results are in hand —
    never before a potentially long (and fallible) sweep or merge,
    which would risk destroying the old artifacts and producing
    nothing.
    """
    import json
    from pathlib import Path

    from repro.experiments.sharding import JOURNAL_NAME

    out = Path(out_dir)
    # The checkpoint journal is this tool's own scaffolding — a
    # --force restart abandons the interrupted sweep it belongs to.
    journal = out / JOURNAL_NAME
    if journal.is_file():
        journal.unlink()
    manifest_path = out / "manifest.json"
    if not manifest_path.is_file():
        return
    try:
        manifest = json.loads(manifest_path.read_text())
        labels = [
            entry["label"] for entry in manifest["scenarios"]
        ]
    except (ValueError, KeyError, TypeError):
        return
    for label in labels:
        for fmt in _EXPORT_FORMATS:
            stale = out / f"{_export_filename(label)}.{fmt}"
            if stale.is_file():
                stale.unlink()
    manifest_path.unlink()


def _check_export_stems(labels) -> None:
    """Refuse scenario labels whose filesystem stems collide (or
    shadow the reserved ``manifest.json``).

    Stems depend only on the labels, so callers with a long run ahead
    (``sweep --out``) check *before* simulating — a collision must
    not be able to discard completed results.
    """
    stems = {"manifest": "(the reserved manifest.json)"}
    for label in labels:
        stem = _export_filename(label)
        if stem in stems:
            raise SystemExit(
                f"sweep: scenario labels {stems[stem]!r} and "
                f"{label!r} both export as {stem!r}; rename one "
                f"to avoid overwriting its files"
            )
        stems[stem] = label


def _write_sweep_exports(
    matrix, specs, out_dir, formats, policies=None, clean=False
) -> List[str]:
    """Write per-scenario export files (plus the cell manifest).

    One ``<scenario>.<format>`` file per scenario per requested
    format, and a ``manifest.json`` describing every cell of the
    sweep.  Exports are deterministic, so a streaming (``--workers
    N``) run writes byte-identical files to a serial one, and a
    sharded run merged back (``merge``) writes byte-identical files
    to an unsharded run — ``scripts/ci.sh`` gates on exactly that.
    ``clean`` (the ``--force`` path) removes prior artifacts — only
    after the stem validation below, so a refused export can never
    have already destroyed the old files.

    Returns:
        The written paths, in write order.
    """
    import json
    from pathlib import Path

    from repro.experiments.results import cell_manifest
    from repro.reporting import sweep_to_csv, sweep_to_json

    exporters = {"json": sweep_to_json, "csv": sweep_to_csv}
    _check_export_stems(matrix)
    out = Path(out_dir)
    if clean:
        _clean_out_dir(out)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for label, cell in matrix.items():
        for fmt in formats:
            path = out / f"{_export_filename(label)}.{fmt}"
            path.write_text(exporters[fmt]({label: cell}))
            written.append(str(path))
    manifest_path = out / "manifest.json"
    manifest_path.write_text(
        json.dumps(
            cell_manifest(specs, policies), indent=2, sort_keys=True
        ) + "\n"
    )
    written.append(str(manifest_path))
    return written


def _build_supervision(args):
    """Build the :class:`~repro.experiments.parallel.Supervision`
    policy from the sweep flags (clean one-line errors for bad
    values)."""
    from repro.experiments.parallel import Supervision

    try:
        return Supervision(
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
            backoff_base=args.retry_backoff,
            fault_plan=args.inject_faults,
        )
    except ValueError as exc:
        raise SystemExit(f"sweep: {exc}") from exc


def _failure_report(acc, out_dir=None) -> str:
    """Human summary of a degraded sweep: what was quarantined, why,
    and how to heal it."""
    lines = [
        f"sweep degraded: {len(acc)} of {acc.expected} cells "
        f"completed, {len(acc.failures())} quarantined:"
    ]
    for f in acc.failures():
        lines.append(
            f"  cell {f.index:>4d}  {f.label}/{f.policy}/seed {f.seed}"
            f"  [{f.kind}] after {f.attempts} attempt(s): {f.message}"
        )
    if out_dir is not None:
        lines.append(
            f"completed cells are checkpointed; re-run the rest with: "
            f"sweep --resume {out_dir}"
        )
    return "\n".join(lines)


def _ordered_manifest_policies(manifest, prog: str):
    """Factories for the manifest's policies, in manifest order (the
    order defines the cell flattening)."""
    from repro.experiments.runner import default_policies

    policies = default_policies()
    missing = [p for p in manifest["policies"] if p not in policies]
    if missing:
        raise SystemExit(
            f"{prog}: manifest names unknown polic"
            f"{'y' if len(missing) == 1 else 'ies'} {missing}; this "
            f"build provides {sorted(policies)}"
        )
    return {name: policies[name] for name in manifest["policies"]}


def _sweep_runner(args):
    """The :class:`~repro.experiments.parallel.ParallelRunner` a
    sweep-family invocation asked for — worker count, engine solver
    override and precompute-store directory all ride on the runner,
    so the local, shard and coordinator-worker execution paths pick
    them up identically."""
    from repro.experiments.parallel import ParallelRunner

    return ParallelRunner(
        workers=args.workers or None,
        solver=getattr(args, "solver", None),
        precompute_dir=getattr(args, "precompute", None),
    )


def _supervised_sweep(specs, args, out=None, manifest=None, acc=None,
                      indices=None) -> Tuple[object, int]:
    """Run ``specs`` under supervision, journaling into ``out`` when
    exporting.  Shared by the fresh-sweep and resume paths.

    Returns ``(accumulator, exit_code)``; when the accumulator is
    complete the caller owns writing exports (the journal is already
    discarded so the directory matches a fault-free run's bytes).
    """
    from repro.config import DEFAULT_SOC
    from repro.experiments.parallel import ParallelRunner
    from repro.experiments.results import cell_manifest
    from repro.experiments.sharding import CellJournal
    from repro.reporting import decision_summary

    supervision = _build_supervision(args)
    plan = supervision.fault_plan
    journal = None
    on_cell = on_failure = None
    if out is not None:
        if manifest is None:
            manifest = cell_manifest(specs)
        out.mkdir(parents=True, exist_ok=True)
        if args.force:
            from repro.experiments.sharding import JOURNAL_NAME

            stale = out / JOURNAL_NAME
            if stale.is_file():
                stale.unlink()
        try:
            journal = CellJournal.open(out, manifest, DEFAULT_SOC)
        except ValueError as exc:
            raise SystemExit(f"sweep: {exc}") from exc

        def on_cell(cell):
            journal.append_cell(
                cell,
                corrupt=plan.corrupts(cell.index)
                if plan is not None else False,
            )

        on_failure = journal.append_failure
    policies = (
        _ordered_manifest_policies(manifest, "sweep")
        if manifest is not None else None
    )
    runner = _sweep_runner(args)
    try:
        acc = runner.run_supervised(
            specs, policies, indices=indices,
            supervision=supervision, acc=acc,
            on_cell=on_cell, on_failure=on_failure,
        )
    finally:
        if journal is not None:
            journal.close()
    if args.decisions:
        print(decision_summary(acc.cells()), file=sys.stderr)
    if acc.complete and journal is not None:
        journal.discard()
    return acc, (EXIT_OK if acc.complete else EXIT_DEGRADED)


def _run_sweep(args) -> Tuple[str, int]:
    """The ``sweep`` subcommand: registry scenarios -> summary tables,
    optionally exported as per-scenario JSON/CSV artifacts.

    Returns ``(text, exit_code)`` — exit codes per the module
    docstring (0 complete / 3 degraded / 1 hard error, the last via
    SystemExit)."""
    from dataclasses import replace

    from repro.reporting import per_scenario_summary
    from repro.scenarios import format_scenario_table, get_scenario

    if args.list_scenarios:
        return format_scenario_table(), EXIT_OK
    if args.worker_url is not None:
        blocked = [
            (flag, value)
            for flag, value in (
                ("--scenarios", args.scenarios or None),
                ("--serve", args.serve or None),
                ("--out", args.out),
                ("--shard", args.shard),
                ("--resume", args.resume),
                ("--tasks", args.tasks),
                ("--seeds", args.seeds),
                ("--cadence", args.cadence),
                ("--format", args.formats),
            )
            if value is not None
        ]
        if blocked:
            raise SystemExit(
                f"sweep: {blocked[0][0]} cannot be combined with "
                f"--worker (the coordinator owns the manifest, the "
                f"overrides and the exports)"
            )
        return _run_sweep_worker(args)
    if args.resume is not None:
        blocked = [
            (flag, value)
            for flag, value in (
                ("--scenarios", args.scenarios or None),
                ("--shard", args.shard),
                ("--tasks", args.tasks),
                ("--seeds", args.seeds),
                ("--cadence", args.cadence),
            )
            if value is not None
        ]
        if blocked:
            raise SystemExit(
                f"sweep: {blocked[0][0]} cannot be combined with "
                f"--resume (the sweep's manifest already pins the "
                f"scenarios and overrides)"
            )
        if args.serve:
            return _run_sweep_serve(args)
        return _run_sweep_resume(args)
    if not args.scenarios:
        raise SystemExit(
            "sweep: pass --scenarios NAME[,NAME...], --resume DIR or "
            "--list (e.g. --scenarios bursty-mixed,diurnal-light)"
        )
    if args.workers < 0:
        raise SystemExit("sweep: --workers must be >= 0 (0 = one per CPU)")
    if args.serve:
        if args.shard is not None:
            raise SystemExit(
                "sweep: --shard cannot be combined with --serve (a "
                "coordinator leases cells dynamically; static shards "
                "pre-lease their slice locally)"
            )
        if args.out is None:
            raise SystemExit(
                "sweep: --serve requires --out DIR (the lease "
                "journal, coordinator.json and the final exports "
                "live there)"
            )
    if args.formats is not None and args.out is None:
        raise SystemExit("sweep: --format requires --out DIR")
    if args.shard is not None:
        if args.out is None:
            raise SystemExit(
                "sweep: --shard requires --out DIR (the partial "
                "artifact destination)"
            )
        if args.formats is not None:
            raise SystemExit(
                "sweep: --format has no effect with --shard (partial "
                "artifacts are always JSON; pass --format to merge)"
            )
        if args.decisions:
            raise SystemExit(
                "sweep: --decisions has no effect with --shard (the "
                "partial artifact already carries every cell's "
                "decision counters; merge the shards first)"
            )
    specs = []
    for name in _expand_scenario_patterns(args.scenarios):
        try:
            spec = get_scenario(name)
        except KeyError as exc:
            raise SystemExit(f"sweep: {exc.args[0]}") from exc
        overrides = {}
        if args.tasks is not None:
            overrides["num_tasks"] = args.tasks
        if args.seeds is not None:
            overrides["seeds"] = args.seeds
        if args.cadence is not None:
            overrides["decision_cadence"] = args.cadence.mode
            overrides["decision_interval"] = args.cadence.interval
        try:
            specs.append(replace(spec, **overrides) if overrides else spec)
        except ValueError as exc:
            raise SystemExit(f"sweep: bad override for {name}: {exc}") from exc
    # Usage errors get clean one-liners; errors raised *inside* the
    # simulation keep their tracebacks.
    from repro.experiments.runner import check_unique_labels

    try:
        check_unique_labels(specs)
    except ValueError as exc:
        raise SystemExit(f"sweep: {exc}") from exc
    if args.serve:
        return _run_sweep_serve(args, specs=specs)
    if args.shard is not None:
        return _run_sweep_shard(specs, args)
    out = None
    if args.out is not None:
        # Vet the destination and export names BEFORE the
        # (potentially long) sweep so a refusal cannot discard
        # completed results.  The directory itself is created by the
        # supervised run (the checkpoint journal needs it): an
        # interrupted sweep deliberately leaves the journal behind
        # for ``sweep --resume``.
        out = _ensure_out_dir(args.out, args.force, "sweep",
                              create=False)
        _check_export_stems(spec.label for spec in specs)
    # Every sweep runs supervised: cell failures are retried with
    # backoff and — when persistent — quarantined, so one poison cell
    # degrades the sweep (exit 3) instead of aborting it.
    acc, code = _supervised_sweep(specs, args, out=out)
    if code != EXIT_OK:
        return _failure_report(acc, out_dir=out), code
    matrix = acc.matrix()
    if out is not None:
        written = _write_sweep_exports(
            matrix, specs, out, args.formats or _EXPORT_FORMATS,
            clean=args.force,
        )
        print(
            f"sweep: wrote {len(written)} file(s) to {args.out}",
            file=sys.stderr,
        )
    return per_scenario_summary(matrix), EXIT_OK


def _run_sweep_shard(specs, args) -> Tuple[str, int]:
    """``sweep --shard I/N``: run one shard, write its partial artifact.

    Every shard of the same sweep must be invoked with identical
    scenarios and overrides (same manifest, hence same digest) —
    ``merge`` refuses partials whose digests differ.  Partial files
    are named ``partial-I-of-N.json`` (1-based, matching the --shard
    notation) so any number of shards can share one directory.

    Shards run supervised too: a quarantined cell lands in the
    partial's ``failures`` list (and exits 3) instead of stranding
    the whole shard — the merge then points at the failures rather
    than mistaking them for an absent host.
    """
    from repro.experiments.results import cell_manifest
    from repro.experiments.sharding import partial_to_json, run_shard

    shard_index, num_shards = args.shard
    manifest = cell_manifest(specs)
    # Vet only; the directory is created just before the write so a
    # shard failing mid-run leaves no stray empty directory behind.
    out = _ensure_out_dir(args.out, args.force, "sweep",
                          allow_non_empty=True, create=False)
    path = out / f"partial-{shard_index + 1}-of-{num_shards}.json"
    if path.exists() and not args.force:
        raise SystemExit(
            f"sweep: {path} already exists; pass --force to overwrite"
        )
    partial = run_shard(
        manifest, shard_index, num_shards, workers=args.workers,
        runner=_sweep_runner(args),
        supervision=_build_supervision(args),
    )
    out.mkdir(parents=True, exist_ok=True)
    path.write_text(partial_to_json(partial))
    shard = partial["shard"]
    print(
        f"sweep: wrote shard partial {path}",
        file=sys.stderr,
    )
    failed = len(partial["failures"])
    status = (
        f"shard {shard_index + 1}/{num_shards}: "
        f"{len(partial['cells'])} of {len(manifest['cells'])} cells "
        f"(cost {shard['cost']}) in {shard['wall_seconds']:.2f}s, "
        f"mode={shard['mode']}\n"
        f"manifest digest {partial['manifest_digest'][:12]}"
    )
    if failed:
        status += (
            f"\n{failed} cell(s) quarantined in this shard (recorded "
            f"in {path.name}); re-run the shard with --force after "
            f"fixing, or heal the merge with sweep --resume"
        )
        return status, EXIT_DEGRADED
    return status, EXIT_OK


def _load_resume_state(out):
    """Reconstruct ``(manifest, specs, acc)`` from what an interrupted
    sweep left in ``out`` — ``manifest.json`` (or the checkpoint
    journal's embedded manifest), any ``partial-*.json`` shard
    artifacts, and the ``cells.jsonl`` journal.  Everything is
    digest-checked against the manifest, so resuming against the
    wrong directory (or a tampered journal) is refused up front.
    Shared by ``sweep --resume`` and ``sweep --resume --serve``.
    """
    import json

    from repro.experiments.results import SweepResults
    from repro.experiments.sharding import (
        JOURNAL_NAME,
        CellJournal,
        manifest_digest,
        manifest_specs,
        partial_from_json,
    )

    journal_path = out / JOURNAL_NAME
    partial_files = sorted(out.glob("partial-*.json"))
    manifest_path = out / "manifest.json"
    manifest = None
    if manifest_path.is_file():
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(
                f"sweep: {manifest_path} is not readable JSON ({exc})"
            ) from exc
    elif journal_path.is_file():
        try:
            manifest = CellJournal._read_header(journal_path)["manifest"]
        except ValueError as exc:
            raise SystemExit(f"sweep: {exc}") from exc
    if manifest is None and not partial_files:
        raise SystemExit(
            f"sweep: nothing to resume in {out} (no manifest.json, "
            f"no {JOURNAL_NAME}, no partial-*.json)"
        )
    partials = []
    for path in partial_files:
        try:
            partials.append(partial_from_json(path.read_text()))
        except (OSError, ValueError) as exc:
            raise SystemExit(f"sweep: {path}: {exc}") from exc
    if manifest is None:
        manifest = partials[0]["manifest"]
    try:
        specs = manifest_specs(manifest)
    except ValueError as exc:
        raise SystemExit(f"sweep: {out}: {exc}") from exc
    digest = manifest_digest(manifest)
    for path, partial in zip(partial_files, partials):
        if partial["manifest_digest"] != digest:
            raise SystemExit(
                f"sweep: {path} belongs to a different sweep "
                f"(manifest digest {partial['manifest_digest'][:12]} "
                f"vs {digest[:12]})"
            )
    if partials:
        try:
            acc = SweepResults.from_partials(
                partials, require_complete=False
            )
        except ValueError as exc:
            raise SystemExit(f"sweep: {out}: {exc}") from exc
    else:
        acc = SweepResults(specs, list(manifest["policies"]))
    if journal_path.is_file():
        import dataclasses as _dc

        from repro.config import DEFAULT_SOC

        try:
            cells, failures, _skipped = CellJournal.read(
                journal_path, digest, _dc.asdict(DEFAULT_SOC)
            )
        except ValueError as exc:
            raise SystemExit(f"sweep: {exc}") from exc
        for cell in cells:
            if not acc.has_cell(cell.index):
                acc.add(cell)
        for failure in failures:
            acc.add_failure(failure)
    return manifest, specs, acc


def _run_sweep_resume(args) -> Tuple[str, int]:
    """``sweep --resume DIR``: finish an interrupted or degraded sweep.

    Reconstructs the sweep from what DIR holds (see
    :func:`_load_resume_state`), then re-runs *only* the
    still-missing cells (quarantined failures included) and writes
    the full exports.  By retry-determinism the final exports are
    byte-identical to an uninterrupted fault-free sweep.
    """
    from pathlib import Path

    from repro.experiments.sharding import (
        JOURNAL_NAME,
        CellJournal,
        manifest_digest,
    )
    from repro.reporting import per_scenario_summary

    out = Path(args.resume)
    if not out.is_dir():
        raise SystemExit(f"sweep: --resume {out} is not a directory")
    if args.workers < 0:
        raise SystemExit("sweep: --workers must be >= 0 (0 = one per CPU)")
    manifest, specs, acc = _load_resume_state(out)
    digest = manifest_digest(manifest)
    journal_path = out / JOURNAL_NAME
    todo = acc.missing_indices()
    print(
        f"sweep: resuming {out}: {len(acc)} of {acc.expected} cells "
        f"checkpointed, {len(acc.failed_indices())} quarantined, "
        f"re-running {len(todo)}",
        file=sys.stderr,
    )
    if todo:
        acc, code = _supervised_sweep(
            specs, args, out=out, manifest=manifest, acc=acc,
            indices=todo,
        )
        if code != EXIT_OK:
            return _failure_report(acc, out_dir=out), code
    elif journal_path.is_file():
        # Fully checkpointed — only the exports were lost.
        CellJournal(journal_path, digest).discard()
    matrix = acc.matrix()
    written = _write_sweep_exports(
        matrix, specs, out, args.formats or _EXPORT_FORMATS,
        policies=list(manifest["policies"]),
    )
    print(
        f"sweep: wrote {len(written)} file(s) to {out}",
        file=sys.stderr,
    )
    return per_scenario_summary(matrix), EXIT_OK


def _run_sweep_serve(args, specs=None) -> Tuple[str, int]:
    """``sweep --serve``: run the sweep as a coordinator service.

    Instead of executing cells locally, serve them over HTTP to any
    number of ``sweep --worker URL`` processes: lease cost-balanced
    batches, expire leases whose heartbeats stop (re-leasing the
    work), fold validated submissions into the accumulator
    incrementally, and journal every accepted cell so a killed
    coordinator resumes with ``sweep --resume DIR --serve`` re-leasing
    only the missing cells.  Once drained, writes the same
    byte-identical exports a local run writes (and the same exit
    codes: 0 complete, 3 degraded).

    ``specs`` is the fresh-serve scenario list; ``None`` means the
    resume path (``args.resume`` names the directory).
    """
    import json
    from pathlib import Path

    from repro.config import DEFAULT_SOC
    from repro.experiments.execution import (
        Coordinator,
        CoordinatorServer,
    )
    from repro.experiments.results import cell_manifest
    from repro.reporting import decision_summary, per_scenario_summary

    if args.lease_ttl is not None and args.lease_ttl <= 0:
        raise SystemExit("sweep: --lease-ttl must be positive")
    if args.lease_cost is not None and args.lease_cost < 1:
        raise SystemExit("sweep: --lease-cost must be >= 1")
    acc = None
    if specs is None:
        out = Path(args.resume)
        if not out.is_dir():
            raise SystemExit(
                f"sweep: --resume {out} is not a directory"
            )
        manifest, specs, acc = _load_resume_state(out)
        print(
            f"sweep: re-serving {out}: {len(acc)} of {acc.expected} "
            f"cells checkpointed, "
            f"{len(acc.failed_indices())} quarantined, re-leasing "
            f"{len(acc.missing_indices())}",
            file=sys.stderr,
        )
    else:
        out = _ensure_out_dir(args.out, args.force, "sweep")
        _check_export_stems(spec.label for spec in specs)
        if args.force:
            from repro.experiments.sharding import JOURNAL_NAME

            stale = out / JOURNAL_NAME
            if stale.is_file():
                stale.unlink()
        manifest = cell_manifest(specs)
    try:
        coordinator = Coordinator(
            manifest,
            soc=DEFAULT_SOC,
            lease_ttl=args.lease_ttl,
            max_lease_cost=args.lease_cost,
            out_dir=out,
            acc=acc,
        )
    except ValueError as exc:
        raise SystemExit(f"sweep: {exc}") from exc
    try:
        server = CoordinatorServer(
            coordinator, host=args.host, port=args.port
        )
    except OSError as exc:
        coordinator.close()
        raise SystemExit(
            f"sweep: cannot bind {args.host}:{args.port} ({exc})"
        ) from exc
    server.start()
    # Discovery file: scripts (and the two-terminal quickstart) read
    # the bound URL from here instead of parsing stderr.  The server
    # owns it — stop() removes it on every exit path, orderly or not;
    # like the journal, scaffolding must not make the export
    # directory differ from a fault-free local run's.
    server.publish_discovery(out / "coordinator.json")
    print(
        f"sweep: coordinator serving "
        f"{len(acc.missing_indices()) if acc else len(manifest['cells'])} "
        f"cell(s) at {server.url}",
        file=sys.stderr,
    )
    print(
        f"sweep: start workers with: python -m repro.cli sweep "
        f"--worker {server.url}",
        file=sys.stderr,
    )
    interrupted = False
    last_report = time.monotonic()
    try:
        while not coordinator.drained:
            time.sleep(0.2)
            coordinator.expire_leases()
            now = time.monotonic()
            if now - last_report >= 5.0:
                print(coordinator.progress_line(), file=sys.stderr)
                last_report = now
    except KeyboardInterrupt:
        interrupted = True
    finally:
        server.stop()
    acc = coordinator.acc
    if interrupted:
        coordinator.close()
        raise SystemExit(
            f"sweep: coordinator interrupted with {len(acc)} of "
            f"{acc.expected} cells done; accepted work is "
            f"journaled — continue with: sweep --resume {out} --serve"
        )
    if args.decisions:
        print(decision_summary(acc.cells()), file=sys.stderr)
    status = coordinator.status()
    if status["warmup_timeouts"]:
        print(
            f"sweep: workers reported {status['warmup_timeouts']} "
            f"warm-up rendezvous timeout(s)",
            file=sys.stderr,
        )
    if not acc.complete:
        coordinator.close()
        return _failure_report(acc, out_dir=out), EXIT_DEGRADED
    coordinator.discard_journal()
    matrix = acc.matrix()
    written = _write_sweep_exports(
        matrix, specs, out, args.formats or _EXPORT_FORMATS,
        policies=list(manifest["policies"]), clean=args.force,
    )
    print(
        f"sweep: wrote {len(written)} file(s) to {out}",
        file=sys.stderr,
    )
    return per_scenario_summary(matrix), EXIT_OK


def _run_sweep_worker(args) -> Tuple[str, int]:
    """``sweep --worker URL``: drain a coordinator as one worker.

    Bootstraps the manifest from the coordinator (refusing a SoC
    mismatch), then leases, executes and submits until the sweep is
    drained.  Transport errors are retried with backoff (a
    coordinator restart is survivable); a refused submission (the
    lease expired and was re-leased) drops the orphaned results and
    continues.  Exit 0 = drained; hard errors exit 1; an injected
    ``crash`` fault kills the process with exit 86 (the whole worker
    process is the disposable unit in this mode — its leases expire
    and the coordinator re-issues them).
    """
    from repro.config import DEFAULT_SOC
    from repro.experiments.execution import (
        HttpTransport,
        SweepWorker,
        TransportError,
    )
    from repro.experiments.faults import activate_in_worker_process
    from repro.experiments.parallel import Supervision

    if args.workers < 0:
        raise SystemExit("sweep: --workers must be >= 0 (0 = one per CPU)")
    try:
        # NB: the fault plan deliberately does NOT ride Supervision
        # here — run_supervised installs a supervision plan with the
        # process-fatal kinds suppressed (this process would survive
        # its own crash fault).  Worker mode arms the plan
        # process-level instead: see activate_in_worker_process.
        supervision = Supervision(
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
            backoff_base=args.retry_backoff,
        )
    except ValueError as exc:
        raise SystemExit(f"sweep: {exc}") from exc
    if args.inject_faults is not None:
        activate_in_worker_process(args.inject_faults)
    try:
        transport = HttpTransport(args.worker_url)
    except ValueError as exc:
        raise SystemExit(f"sweep: {exc}") from exc
    worker = SweepWorker(
        transport,
        runner=_sweep_runner(args),
        soc=DEFAULT_SOC,
        supervision=supervision,
    )
    try:
        summary = worker.run()
    except (TransportError, ValueError) as exc:
        raise SystemExit(f"sweep: {exc}") from exc
    return (
        f"worker {summary['worker_id']}: coordinator drained — "
        f"{summary['leases']} lease(s), {summary['cells']} cell(s) "
        f"completed, {summary['failures']} quarantined, "
        f"{summary['refused']} submission(s) refused"
    ), EXIT_OK


def _run_merge(args) -> str:
    """The ``merge`` subcommand: fold shard partials, print the same
    per-scenario summary a one-host sweep prints, optionally write
    the byte-identical export files."""
    from pathlib import Path

    from repro.experiments.results import SweepResults
    from repro.experiments.sharding import partial_from_json
    from repro.reporting import per_scenario_summary

    if args.formats is not None and args.out is None:
        raise SystemExit("merge: --format requires --out DIR")
    files = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(path.glob("partial-*.json"))
            if not found:
                raise SystemExit(
                    f"merge: no partial-*.json files in {path}"
                )
            files.extend(found)
        elif path.is_file():
            files.append(path)
        else:
            raise SystemExit(f"merge: {path} does not exist")
    if args.out is not None:
        # Writing (and --force cleaning) into a directory that holds
        # the input partials would destroy them mid-merge.
        out_resolved = Path(args.out).resolve()
        inside = [p for p in files if p.resolve().parent == out_resolved]
        if inside:
            raise SystemExit(
                f"merge: --out {args.out} contains input partial "
                f"{inside[0].name}; write the merged exports to a "
                f"different directory"
            )
    partials = []
    for path in files:
        try:
            partials.append(partial_from_json(path.read_text()))
        except (OSError, ValueError) as exc:
            # OSError covers unreadable files (permissions, a path
            # that is a device/binary blob raising on decode...);
            # both map to the same clean one-line refusal.
            raise SystemExit(f"merge: {path}: {exc}") from exc
    try:
        acc = SweepResults.from_partials(partials)
    except ValueError as exc:
        raise SystemExit(f"merge: {exc}") from exc
    if args.out is not None:
        # Vetted only now that the inputs parsed and merged — and not
        # created yet (the export writer mkdirs after its own stem
        # check), so no refusal path can leave a stray empty output
        # directory behind.
        _ensure_out_dir(args.out, args.force, "merge", create=False)
    matrix = acc.matrix()
    print(
        f"merge: folded {len(partials)} partial(s), {len(acc)} cells, "
        f"manifest digest {partials[0]['manifest_digest'][:12]}",
        file=sys.stderr,
    )
    if args.out is not None:
        written = _write_sweep_exports(
            matrix, acc.specs, args.out,
            args.formats or _EXPORT_FORMATS,
            policies=acc.policies,
            clean=args.force,
        )
        print(
            f"merge: wrote {len(written)} file(s) to {args.out}",
            file=sys.stderr,
        )
    return per_scenario_summary(matrix)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MoCA (HPCA 2023) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig1 = sub.add_parser("fig1", help="motivation: co-location slowdown")
    p_fig1.add_argument("--trials", type=int, default=300)
    p_fig1.add_argument("--seed", type=int, default=0)

    for name in ("fig5", "fig6", "fig7", "fig8"):
        p = sub.add_parser(name, help=f"paper {name} matrix")
        p.add_argument("--tasks", type=int, default=250)
        p.add_argument("--seeds", type=_parse_seeds, default=(1, 2, 3))
        p.add_argument(
            "--workers", type=int, default=1,
            help="worker processes for the matrix cells "
                 "(1 = serial, 0 = one per CPU)",
        )

    sub.add_parser("table4", help="area breakdown")
    sub.add_parser("validate", help="latency-model validation")
    sub.add_parser("models", help="list the benchmark DNN zoo (Table III)")

    p_sweeps = sub.add_parser(
        "sweeps",
        help="SoC configuration sensitivity sweeps (appendix F) — "
             "unrelated to the scenario-registry 'sweep' command",
    )
    p_sweeps.add_argument("--tasks", type=int, default=80)
    p_sweeps.add_argument("--seeds", type=_parse_seeds, default=(1, 2))

    p_sweep = sub.add_parser(
        "sweep",
        help="run named scenario-registry entries across all policies "
             "(not the SoC 'sweeps' command)",
        description=(
            "Run scenarios from the registry (repro.scenarios) across "
            "the four policies and print a per-scenario summary table. "
            "Serial (--workers 1) and parallel (--workers N) runs are "
            "bit-identical; --list shows the registered scenarios."
        ),
    )
    p_sweep.add_argument(
        "--scenarios", type=_parse_names, default=(),
        metavar="NAME[,NAME...]",
        help="comma-separated registry names and/or glob patterns "
             "resolved against the registry, e.g. bursty-*,"
             "ref-*-qos-h (see --list)",
    )
    p_sweep.add_argument(
        "--cadence", type=_parse_cadence, default=None,
        metavar="MODE",
        help="override every scenario's decision cadence: "
             "every-event (default), block-boundary, or "
             "interval:CYCLES (e.g. interval:5e6) — the regulated "
             "decision-point axis",
    )
    p_sweep.add_argument(
        "--decisions", action="store_true",
        help="print per-cell decision/epoch telemetry (plans "
             "emitted/applied/no-op, epoch-cache reuse ratio) to "
             "stderr",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the matrix cells "
             "(1 = serial, 0 = one per CPU)",
    )
    p_sweep.add_argument(
        "--solver", choices=("kernel", "vector", "scalar"),
        default=None,
        help="engine block-time solver for every cell (default: the "
             "engine's default, the epoch-horizon kernel); all three "
             "are bit-identical — this is an operational/debugging "
             "knob, never part of the sweep's identity",
    )
    p_sweep.add_argument(
        "--precompute", default=None, dest="precompute", metavar="DIR",
        help="on-disk precompute store: load network block costs "
             "from DIR instead of rebuilding them, and save fresh "
             "builds back; shared safely by concurrent sweeps and "
             "workers (entries are keyed by a digest of the full "
             "model + SoC configuration, so a stale entry can never "
             "alias); treat DIR with the same trust as the source "
             "tree",
    )
    p_sweep.add_argument(
        "--tasks", type=int, default=None,
        help="override every scenario's num_tasks",
    )
    p_sweep.add_argument(
        "--seeds", type=_parse_seeds, default=None,
        help="override every scenario's seeds (comma-separated)",
    )
    p_sweep.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list registered scenarios and exit",
    )
    p_sweep.add_argument(
        "--out", default=None, metavar="DIR",
        help="write per-scenario export files (plus manifest.json) "
             "into DIR",
    )
    p_sweep.add_argument(
        "--format", type=_parse_formats, default=None,
        dest="formats", metavar="FMT[,FMT...]",
        help="export formats for --out: json,csv (default: both); "
             "requires --out",
    )
    p_sweep.add_argument(
        "--shard", type=_parse_shard, default=None, metavar="I/N",
        help="run only shard I of N (1-based; cost-balanced, "
             "deterministic) and write a partial-I-of-N.json "
             "artifact into --out DIR; merge the partials with the "
             "'merge' command",
    )
    p_sweep.add_argument(
        "--force", action="store_true",
        help="replace the prior export artifacts in --out DIR (the "
             "files its manifest.json names) instead of refusing",
    )
    p_sweep.add_argument(
        "--resume", default=None, metavar="DIR",
        help="finish an interrupted or degraded sweep: fold DIR's "
             "checkpoint journal and/or shard partials, re-run only "
             "the missing cells, and write the full exports "
             "(byte-identical to an uninterrupted run); mutually "
             "exclusive with --scenarios/--shard and the scenario "
             "overrides",
    )
    p_sweep.add_argument(
        "--serve", action="store_true",
        help="serve this sweep's cells to 'sweep --worker URL' "
             "processes over HTTP instead of executing locally; "
             "requires --out DIR (receives the lease journal, "
             "coordinator.json and the final exports); combine with "
             "--resume DIR to re-serve only the missing cells",
    )
    p_sweep.add_argument(
        "--worker", default=None, dest="worker_url", metavar="URL",
        help="run as a worker draining the coordinator at URL "
             "(printed by sweep --serve and written to its "
             "DIR/coordinator.json); exits 0 once the sweep is "
             "drained",
    )
    p_sweep.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address for --serve (default 127.0.0.1)",
    )
    p_sweep.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="bind port for --serve (default 0 = ephemeral; the "
             "bound port is printed and written to coordinator.json)",
    )
    p_sweep.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="--serve: seconds a lease survives between worker "
             "heartbeats before its cells are re-leased to other "
             "workers (default 30)",
    )
    p_sweep.add_argument(
        "--lease-cost", type=int, default=None, metavar="COST",
        help="--serve: cap on a single lease's summed cell cost "
             "(default: the manifest's total cost spread over 8 "
             "batches, LPT-balanced)",
    )
    p_sweep.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retry attempts per cell before quarantining it "
             "(default 2; 0 = no retries)",
    )
    p_sweep.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock limit per cell; an overrunning cell's "
             "worker is killed and the cell retried/quarantined "
             "(default: none; needs --workers >= 2)",
    )
    p_sweep.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base of the exponential retry backoff "
             "(delay = SECONDS * 2^attempt; default 0.5)",
    )
    p_sweep.add_argument(
        "--inject-faults", type=_parse_fault_plan, default=None,
        metavar="SPEC",
        help="deterministic fault injection for testing failure "
             "paths, e.g. 'crash:cells=2', "
             "'transient:rate=0.25:seed=7:attempts=all', "
             "'hang:cells=1:seconds=30'; rules separated by ';' "
             "(see repro.experiments.faults)",
    )

    p_merge = sub.add_parser(
        "merge",
        help="merge sweep shard partials back into one result set",
        description=(
            "Fold partial-*.json artifacts written by "
            "'sweep --shard I/N --out DIR' (any order, any mix of "
            "directories and files) back into the full sweep. "
            "Partials from different manifests, overlapping cells "
            "and gaps are refused. The printed summary and the "
            "--out export files are byte-identical to running the "
            "sweep unsharded on one host."
        ),
    )
    p_merge.add_argument(
        "paths", nargs="+", metavar="DIR_OR_FILE",
        help="directories (scanned for partial-*.json) and/or "
             "partial files",
    )
    p_merge.add_argument(
        "--out", default=None, metavar="DIR",
        help="write the merged per-scenario export files (plus "
             "manifest.json) into DIR",
    )
    p_merge.add_argument(
        "--format", type=_parse_formats, default=None,
        dest="formats", metavar="FMT[,FMT...]",
        help="export formats for --out: json,csv (default: both); "
             "requires --out",
    )
    p_merge.add_argument(
        "--force", action="store_true",
        help="replace the prior export artifacts in --out DIR (the "
             "files its manifest.json names) instead of refusing",
    )

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--tasks", type=int, default=250)
    p_all.add_argument("--seeds", type=_parse_seeds, default=(1, 2, 3))
    p_all.add_argument("--trials", type=int, default=300)
    p_all.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the matrix cells "
             "(1 = serial, 0 = one per CPU)",
    )
    return parser


def _format_models() -> str:
    """Table III as text: the zoo with sizes and workload sets."""
    from repro.models.zoo import WORKLOAD_SETS, build_model, model_names

    lines = [
        f"{'model':<12s}{'domain':<24s}{'layers':>7s}{'GMACs':>8s}"
        f"{'params MB':>11s}{'sets':>7s}"
    ]
    for name in model_names():
        net = build_model(name)
        sets = "".join(
            s for s, members in WORKLOAD_SETS.items() if name in members
        )
        lines.append(
            f"{name:<12s}{net.domain:<24s}{len(net):>7d}"
            f"{net.total_macs / 1e9:>8.2f}"
            f"{net.total_weight_bytes / 1e6:>11.2f}{sets:>7s}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    start = time.time()
    exit_code = EXIT_OK

    if args.command == "fig1":
        print(format_fig1(run_fig1(trials=args.trials, seed=args.seed)))
    elif args.command in ("fig5", "fig6", "fig7", "fig8"):
        matrix = run_fig5(
            num_tasks=args.tasks, seeds=args.seeds, workers=args.workers
        )
        formatter = {
            "fig5": format_fig5,
            "fig6": format_fig6,
            "fig7": format_fig7,
            "fig8": format_fig8,
        }[args.command]
        print(formatter(matrix))
    elif args.command == "table4":
        print(format_table4())
    elif args.command == "validate":
        print(format_validation(run_validation()))
    elif args.command == "models":
        print(_format_models())
    elif args.command == "sweep":
        text, exit_code = _run_sweep(args)
        print(text)
    elif args.command == "merge":
        print(_run_merge(args))
    elif args.command == "sweeps":
        from repro.experiments.sweeps import (
            format_sweep,
            sweep_dram_bandwidth,
            sweep_l2_capacity,
            sweep_num_tiles,
        )

        for title, sweep in (
            ("DRAM bandwidth sweep:", sweep_dram_bandwidth),
            ("L2 capacity sweep:", sweep_l2_capacity),
            ("Tile count sweep:", sweep_num_tiles),
        ):
            print(format_sweep(
                title,
                sweep(num_tasks=args.tasks, seeds=args.seeds),
            ))
            print()
    elif args.command == "all":
        print(format_fig1(run_fig1(trials=args.trials)))
        print()
        matrix = run_fig5(
            num_tasks=args.tasks, seeds=args.seeds, workers=args.workers
        )
        for fmt in (format_fig5, format_fig6, format_fig7, format_fig8):
            print(fmt(matrix))
            print()
        print(format_table4())
        print()
        print(format_validation(run_validation()))
    print(f"\n[{args.command} completed in {time.time() - start:.1f}s]",
          file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
