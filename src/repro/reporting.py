"""Result rendering and export.

The paper's artifact parses UART logs into CSVs and bar plots
(``parse_result_from_uartlog.py`` / ``make_fair.py`` /
``build_sla.sh``).  This module is the reproduction's equivalent:
ASCII bar charts for terminal use, plus CSV and JSON export of the
experiment matrices and per-task records so downstream tooling can plot
them.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Mapping, Optional, Sequence

from repro.experiments.runner import POLICY_ORDER, ScenarioResult
from repro.sim.job import TaskResult

Matrix = Dict[str, Dict[str, ScenarioResult]]


def ascii_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 48,
    max_value: Optional[float] = None,
) -> str:
    """Render labeled values as horizontal ASCII bars.

    Args:
        values: Label -> value (non-negative).
        title: Optional heading line.
        width: Bar width in characters for the largest value.
        max_value: Scale maximum; defaults to the data maximum.

    Returns:
        The chart as a multi-line string.
    """
    if not values:
        raise ValueError("no values to chart")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar values must be non-negative")
    scale = max_value if max_value is not None else max(values.values())
    if scale <= 0:
        scale = 1.0
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(0, round(width * min(value, scale) / scale))
        lines.append(f"{str(label):<{label_w}s} |{bar:<{width}s}| {value:.3f}")
    return "\n".join(lines)


def matrix_bar_charts(matrix: Matrix, metric: str, title: str) -> str:
    """One ASCII bar chart per scenario for a matrix metric."""
    sections = [title]
    peak = max(
        getattr(result, metric)
        for cell in matrix.values()
        for result in cell.values()
    )
    for label, cell in matrix.items():
        values = {
            policy: getattr(cell[policy], metric)
            for policy in POLICY_ORDER
            if policy in cell
        }
        sections.append(
            ascii_bar_chart(values, title=label, max_value=peak)
        )
    return "\n\n".join(sections)


def per_scenario_summary(matrix: Matrix) -> str:
    """One aligned table per scenario: each policy's headline metrics.

    This is the ``repro.cli sweep`` output format — every scenario of
    the matrix (registry entries keep their registry name as the
    label) gets a block with the Section IV-C metric bundle per
    policy, averaged over the scenario's seeds.
    """
    if not matrix:
        raise ValueError("empty matrix")
    blocks = []
    for label, cell in matrix.items():
        policies = [p for p in POLICY_ORDER if p in cell]
        policies += [p for p in cell if p not in POLICY_ORDER]
        lines = [
            f"scenario {label} "
            f"({len(next(iter(cell.values())).per_seed)} seed(s))",
            f"  {'policy':<10s}{'sla':>8s}{'stp/n':>8s}{'fairness':>10s}"
            f"{'slowdown':>10s}{'p99':>8s}",
        ]
        for policy in policies:
            result = cell[policy]
            lines.append(
                f"  {policy:<10s}{result.sla_rate:>8.3f}"
                f"{result.stp_normalized:>8.3f}{result.fairness:>10.4f}"
                f"{result.mean_slowdown:>10.2f}{result.p99_slowdown:>8.2f}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def matrix_to_csv(matrix: Matrix, metric: str) -> str:
    """Export one metric of a matrix as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["scenario"] + list(POLICY_ORDER))
    for label, cell in matrix.items():
        writer.writerow(
            [label]
            + [
                f"{getattr(cell[p], metric):.6f}" if p in cell else ""
                for p in POLICY_ORDER
            ]
        )
    return out.getvalue()


def matrix_to_json(matrix: Matrix) -> str:
    """Export a full matrix (all headline metrics) as JSON text."""
    payload = {}
    for label, cell in matrix.items():
        payload[label] = {
            policy: {
                "sla_rate": result.sla_rate,
                "stp": result.stp,
                "stp_normalized": result.stp_normalized,
                "fairness": result.fairness,
                "num_seeds": len(result.per_seed),
            }
            for policy, result in cell.items()
        }
    return json.dumps(payload, indent=2, sort_keys=True)


_TASK_FIELDS = (
    "task_id", "network_name", "priority", "dispatch_cycle", "started_at",
    "finished_at", "qos_target_cycles", "isolated_cycles", "preemptions",
    "tile_repartitions", "bw_reconfigs", "stall_cycles",
)


def results_to_csv(results: Sequence[TaskResult]) -> str:
    """Export per-task records (plus derived columns) as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        list(_TASK_FIELDS) + ["latency", "runtime", "met_sla", "slowdown"]
    )
    for r in results:
        writer.writerow(
            [getattr(r, f) for f in _TASK_FIELDS]
            + [r.latency, r.runtime, int(r.met_sla), f"{r.slowdown:.6f}"]
        )
    return out.getvalue()


def timeline_chart(
    trace,
    width: int = 72,
    max_jobs: int = 24,
) -> str:
    """Render a simulation trace as an ASCII Gantt chart.

    Each job gets one row spanning dispatch to finish: ``.`` while
    waiting in the task queue, ``=`` while running, ``F`` at the finish
    mark.  Useful for eyeballing queueing vs runtime in examples and
    bug reports.

    Args:
        trace: A :class:`repro.sim.trace.Trace` with DISPATCH / START /
            FINISH records.
        width: Chart width in characters.
        max_jobs: Rows to render (earliest-dispatched first).
    """
    from repro.sim.trace import TraceEvent

    spans = {}
    for record in trace.records:
        entry = spans.setdefault(
            record.job_id, {"dispatch": None, "start": None, "finish": None}
        )
        if record.event is TraceEvent.DISPATCH:
            entry["dispatch"] = record.cycle
        elif record.event is TraceEvent.START and entry["start"] is None:
            entry["start"] = record.cycle
        elif record.event is TraceEvent.FINISH:
            entry["finish"] = record.cycle
    spans = {
        job: s for job, s in spans.items()
        if s["dispatch"] is not None and s["finish"] is not None
    }
    if not spans:
        raise ValueError("trace holds no complete job lifecycles")
    horizon = max(s["finish"] for s in spans.values())
    if horizon <= 0:
        raise ValueError("empty timeline")
    ordered = sorted(spans.items(), key=lambda kv: kv[1]["dispatch"])
    label_w = max(len(j) for j, _ in ordered[:max_jobs])

    def col(cycle):
        return min(width - 1, int(width * cycle / horizon))

    lines = [f"{'job':<{label_w}s} |{'-' * width}| 0 .. {horizon:,.0f} cyc"]
    for job, s in ordered[:max_jobs]:
        row = [" "] * width
        start = s["start"] if s["start"] is not None else s["finish"]
        for c in range(col(s["dispatch"]), col(start)):
            row[c] = "."
        for c in range(col(start), col(s["finish"])):
            row[c] = "="
        row[col(s["finish"])] = "F"
        lines.append(f"{job:<{label_w}s} |{''.join(row)}|")
    if len(ordered) > max_jobs:
        lines.append(f"... {len(ordered) - max_jobs} more jobs not shown")
    return "\n".join(lines)


def results_from_csv(text: str) -> Sequence[TaskResult]:
    """Rebuild per-task records from :func:`results_to_csv` output."""
    reader = csv.DictReader(io.StringIO(text))
    results = []
    for row in reader:
        results.append(
            TaskResult(
                task_id=row["task_id"],
                network_name=row["network_name"],
                priority=int(row["priority"]),
                dispatch_cycle=float(row["dispatch_cycle"]),
                started_at=float(row["started_at"]),
                finished_at=float(row["finished_at"]),
                qos_target_cycles=float(row["qos_target_cycles"]),
                isolated_cycles=float(row["isolated_cycles"]),
                preemptions=int(row["preemptions"]),
                tile_repartitions=int(row["tile_repartitions"]),
                bw_reconfigs=int(row["bw_reconfigs"]),
                stall_cycles=float(row["stall_cycles"]),
            )
        )
    return results
