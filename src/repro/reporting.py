"""Result rendering and export.

The paper's artifact parses UART logs into CSVs and bar plots
(``parse_result_from_uartlog.py`` / ``make_fair.py`` /
``build_sla.sh``).  This module is the reproduction's equivalent:
ASCII bar charts for terminal use, plus CSV and JSON export of the
experiment matrices and per-task records so downstream tooling can plot
them.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.runner import POLICY_ORDER, ScenarioResult
from repro.metrics import MetricsSummary
from repro.sim.job import TaskResult

Matrix = Dict[str, Dict[str, ScenarioResult]]


def ascii_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 48,
    max_value: Optional[float] = None,
) -> str:
    """Render labeled values as horizontal ASCII bars.

    Args:
        values: Label -> value (non-negative).
        title: Optional heading line.
        width: Bar width in characters for the largest value.
        max_value: Scale maximum; defaults to the data maximum.

    Returns:
        The chart as a multi-line string.
    """
    if not values:
        raise ValueError("no values to chart")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar values must be non-negative")
    scale = max_value if max_value is not None else max(values.values())
    if scale <= 0:
        scale = 1.0
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(0, round(width * min(value, scale) / scale))
        lines.append(f"{str(label):<{label_w}s} |{bar:<{width}s}| {value:.3f}")
    return "\n".join(lines)


def matrix_bar_charts(matrix: Matrix, metric: str, title: str) -> str:
    """One ASCII bar chart per scenario for a matrix metric."""
    sections = [title]
    peak = max(
        getattr(result, metric)
        for cell in matrix.values()
        for result in cell.values()
    )
    for label, cell in matrix.items():
        values = {
            policy: getattr(cell[policy], metric)
            for policy in POLICY_ORDER
            if policy in cell
        }
        sections.append(
            ascii_bar_chart(values, title=label, max_value=peak)
        )
    return "\n\n".join(sections)


def per_scenario_summary(matrix: Matrix) -> str:
    """One aligned table per scenario: each policy's headline metrics.

    This is the ``repro.cli sweep`` output format — every scenario of
    the matrix (registry entries keep their registry name as the
    label) gets a block with the Section IV-C metric bundle per
    policy, averaged over the scenario's seeds.
    """
    if not matrix:
        raise ValueError("empty matrix")
    blocks = []
    for label, cell in matrix.items():
        policies = [p for p in POLICY_ORDER if p in cell]
        policies += [p for p in cell if p not in POLICY_ORDER]
        lines = [
            f"scenario {label} "
            f"({len(next(iter(cell.values())).per_seed)} seed(s))",
            f"  {'policy':<10s}{'sla':>8s}{'stp/n':>8s}{'fairness':>10s}"
            f"{'slowdown':>10s}{'p99':>8s}",
        ]
        for policy in policies:
            result = cell[policy]
            lines.append(
                f"  {policy:<10s}{result.sla_rate:>8.3f}"
                f"{result.stp_normalized:>8.3f}{result.fairness:>10.4f}"
                f"{result.mean_slowdown:>10.2f}{result.p99_slowdown:>8.2f}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def decision_summary(cells) -> str:
    """One aligned table of decision/epoch telemetry per (scenario,
    policy) cell group.

    ``cells`` is a sequence of :class:`~repro.experiments.results.
    CellResult` (the streaming executor's per-cell stream, e.g.
    ``ParallelRunner.last_cells``); seeds of the same (scenario,
    policy) pair are summed.  Columns: policy consultations
    (``decisions``), plans that mutated state vs no-ops, total
    controller actions, and the allocation-epoch cache reuse ratio
    (``reuses / recomputes``) — the number the decision-cadence sweep
    axis is judged by.
    """
    cells = list(cells)
    if not cells:
        raise ValueError("no cells to summarise")
    groups: Dict[tuple, Dict[str, int]] = {}
    order: List[tuple] = []
    for cell in cells:
        key = (cell.label, cell.policy)
        if key not in groups:
            groups[key] = {
                "decisions": 0, "applied": 0, "noop": 0,
                "actions": 0, "reuses": 0, "recomputes": 0,
            }
            order.append(key)
        g = groups[key]
        g["decisions"] += cell.decisions
        g["applied"] += cell.plans_applied
        g["noop"] += cell.plans_noop
        g["actions"] += cell.plan_actions
        g["reuses"] += cell.block_time_reuses
        g["recomputes"] += cell.block_time_recomputes
    lines = [
        f"{'scenario':<22s}{'policy':<10s}{'decisions':>10s}"
        f"{'applied':>9s}{'noop':>9s}{'actions':>9s}{'reuse':>8s}"
    ]
    for label, policy in order:
        g = groups[(label, policy)]
        ratio = g["reuses"] / max(g["recomputes"], 1)
        lines.append(
            f"{label:<22s}{policy:<10s}{g['decisions']:>10d}"
            f"{g['applied']:>9d}{g['noop']:>9d}{g['actions']:>9d}"
            f"{ratio:>8.3f}"
        )
    return "\n".join(lines)


def matrix_to_csv(matrix: Matrix, metric: str) -> str:
    """Export one metric of a matrix as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["scenario"] + list(POLICY_ORDER))
    for label, cell in matrix.items():
        writer.writerow(
            [label]
            + [
                f"{getattr(cell[p], metric):.6f}" if p in cell else ""
                for p in POLICY_ORDER
            ]
        )
    return out.getvalue()


def matrix_to_json(matrix: Matrix) -> str:
    """Export a full matrix (all headline metrics) as JSON text."""
    payload = {}
    for label, cell in matrix.items():
        payload[label] = {
            policy: {
                "sla_rate": result.sla_rate,
                "stp": result.stp,
                "stp_normalized": result.stp_normalized,
                "fairness": result.fairness,
                "num_seeds": len(result.per_seed),
            }
            for policy, result in cell.items()
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def _ordered_policies(cell: Dict[str, ScenarioResult]) -> List[str]:
    """Presentation order: the paper's four systems, then extras."""
    policies = [p for p in POLICY_ORDER if p in cell]
    policies += [p for p in cell if p not in POLICY_ORDER]
    return policies


#: Aggregate (seed-averaged) metrics exported per (scenario, policy).
_AGGREGATE_METRICS = (
    "sla_rate", "stp", "stp_normalized", "fairness",
    "mean_slowdown", "p99_slowdown",
)


def sweep_to_json(matrix: Matrix) -> str:
    """Export a sweep matrix as a full-fidelity JSON document.

    Per scenario: the spec (via ``ScenarioSpec.to_dict``, so the file
    is self-describing and re-runnable), per-policy seed-averaged
    aggregates, and the complete per-seed metric bundles at full float
    precision (JSON round-trips Python floats exactly).  Output is
    deterministic — scenario order follows the matrix, everything
    else is sorted — so serial and streaming runs of the same sweep
    export byte-identical files (``scripts/ci.sh`` gates on this).
    """
    if not matrix:
        raise ValueError("empty matrix")
    scenarios = []
    for label, cell in matrix.items():
        spec = next(iter(cell.values())).spec
        policies = {}
        # Plain dict order: the sort_keys=True dump below re-orders
        # object keys alphabetically anyway, so curated POLICY_ORDER
        # cannot survive into this file (the CSV's row order is the
        # presentation-ordered export).
        for policy, result in cell.items():
            policies[policy] = {
                "aggregate": {
                    name: getattr(result, name)
                    for name in _AGGREGATE_METRICS
                },
                "per_seed": [
                    {"seed": seed, **summary.to_dict()}
                    for seed, summary in zip(spec.seeds, result.per_seed)
                ],
            }
        scenarios.append(
            {
                "label": label,
                "spec": spec.to_dict(),
                "policies": policies,
            }
        )
    return json.dumps(
        {"format": "repro-sweep/1", "scenarios": scenarios},
        indent=2,
        sort_keys=True,
    ) + "\n"


def sweep_from_json(text: str) -> Matrix:
    """Rebuild a sweep matrix from :func:`sweep_to_json` output.

    Round-trips exactly: specs are reconstructed via
    ``ScenarioSpec.from_dict`` and every per-seed
    :class:`MetricsSummary` compares equal to the original.
    """
    from repro.scenarios import ScenarioSpec

    payload = json.loads(text)
    if (
        not isinstance(payload, dict)
        or payload.get("format") != "repro-sweep/1"
    ):
        raise ValueError(
            "not a repro-sweep/1 document (format="
            + repr(
                payload.get("format")
                if isinstance(payload, dict) else type(payload).__name__
            )
            + ")"
        )
    matrix: Matrix = {}
    for entry in payload["scenarios"]:
        spec = ScenarioSpec.from_dict(entry["spec"])
        cell = {}
        for policy, block in entry["policies"].items():
            cell[policy] = ScenarioResult(
                policy=policy,
                spec=spec,
                per_seed=tuple(
                    MetricsSummary.from_dict(row)
                    for row in block["per_seed"]
                ),
            )
        matrix[entry["label"]] = cell
    return matrix


#: Scalar MetricsSummary columns of the sweep CSV, in export order.
_SWEEP_SCALAR_FIELDS = tuple(
    f.name for f in dataclasses.fields(MetricsSummary)
    if f.name not in ("policy", "sla_by_group")
)


def sweep_to_csv(matrix: Matrix) -> str:
    """Export a sweep matrix as one per-seed row per cell.

    Columns: scenario, policy, seed, every scalar
    :class:`MetricsSummary` field (full ``repr`` precision, so values
    survive a text round-trip bit-exactly), ``sla_by_group`` as a
    compact sorted-JSON object, and the scenario ``spec`` as a
    compact sorted-JSON object — the CSV is self-describing, like the
    JSON export, so :func:`sweep_from_csv` rebuilds the full matrix.
    All structured columns (and any hostile scenario label containing
    commas, quotes or newlines) go through the ``csv`` module's
    quoting, so values that embed the delimiter cannot corrupt the
    row.  Row order is deterministic (matrix order, paper policy
    order, seed order) — serial and streaming runs export
    byte-identical files.
    """
    if not matrix:
        raise ValueError("empty matrix")
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        ["scenario", "policy", "seed"]
        + list(_SWEEP_SCALAR_FIELDS)
        + ["sla_by_group", "spec"]
    )
    for label, cell in matrix.items():
        for policy in _ordered_policies(cell):
            result = cell[policy]
            spec_json = json.dumps(
                result.spec.to_dict(),
                sort_keys=True,
                separators=(",", ":"),
            )
            for seed, summary in zip(result.spec.seeds, result.per_seed):
                row = [label, policy, seed]
                for name in _SWEEP_SCALAR_FIELDS:
                    value = getattr(summary, name)
                    row.append(
                        repr(value) if isinstance(value, float) else value
                    )
                row.append(
                    json.dumps(
                        summary.sla_by_group,
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                )
                row.append(spec_json)
                writer.writerow(row)
    return out.getvalue()


def sweep_from_csv(text: str) -> Matrix:
    """Rebuild a sweep matrix from :func:`sweep_to_csv` output.

    Round-trips exactly: specs are reconstructed from the ``spec``
    column and every per-seed :class:`MetricsSummary` compares equal
    to the exporter's input, so a CSV-exported sweep carries the same
    information as the JSON export.
    """
    from repro.scenarios import ScenarioSpec

    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or "spec" not in reader.fieldnames:
        raise ValueError(
            "not a sweep CSV (missing the 'spec' column; files from "
            "older exporters are not self-describing)"
        )
    required = (
        ("scenario", "policy", "seed")
        + _SWEEP_SCALAR_FIELDS
        + ("sla_by_group",)
    )
    absent = [c for c in required if c not in reader.fieldnames]
    if absent:
        raise ValueError(
            f"not a sweep CSV (missing column(s) {absent})"
        )
    rows: Dict[str, Dict[str, List[Tuple[int, MetricsSummary]]]] = {}
    specs: Dict[str, ScenarioSpec] = {}
    for row in reader:
        kwargs = {"policy": row["policy"]}
        try:
            for name in _SWEEP_SCALAR_FIELDS:
                field_type = MetricsSummary.__dataclass_fields__[name].type
                raw = row[name]
                kwargs[name] = (
                    int(raw) if field_type in ("int", int) else float(raw)
                )
            kwargs["sla_by_group"] = json.loads(row["sla_by_group"])
        except TypeError:
            # DictReader fills short rows with None: a file cut
            # mid-row must read as truncation, not a cryptic
            # float(None) TypeError.
            raise ValueError(
                f"sweep CSV row for scenario {row['scenario']!r} is "
                f"incomplete (truncated file?)"
            ) from None
        label = row["scenario"]
        spec = ScenarioSpec.from_dict(json.loads(row["spec"]))
        if spec.label != label:
            raise ValueError(
                f"scenario column {label!r} does not match the "
                f"embedded spec's label {spec.label!r} (hand-edited "
                f"file?)"
            )
        if label in specs:
            if specs[label] != spec:
                raise ValueError(
                    f"scenario {label!r} carries two different specs "
                    f"(corrupt or hand-edited file?)"
                )
        else:
            specs[label] = spec
        rows.setdefault(label, {}).setdefault(row["policy"], []).append(
            (int(row["seed"]), MetricsSummary(**kwargs))
        )
    matrix: Matrix = {}
    for label, by_policy in rows.items():
        spec = specs[label]
        cell = {}
        for policy, seeded in by_policy.items():
            if tuple(seed for seed, _ in seeded) != spec.seeds:
                raise ValueError(
                    f"scenario {label!r} policy {policy!r}: seed rows "
                    f"{[s for s, _ in seeded]} do not match the "
                    f"spec's seeds {list(spec.seeds)} (truncated or "
                    f"reordered file?)"
                )
            cell[policy] = ScenarioResult(
                policy=policy,
                spec=spec,
                per_seed=tuple(summary for _, summary in seeded),
            )
        matrix[label] = cell
    return matrix


_TASK_FIELDS = (
    "task_id", "network_name", "priority", "dispatch_cycle", "started_at",
    "finished_at", "qos_target_cycles", "isolated_cycles", "preemptions",
    "tile_repartitions", "bw_reconfigs", "stall_cycles",
)


def results_to_csv(results: Sequence[TaskResult]) -> str:
    """Export per-task records (plus derived columns) as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        list(_TASK_FIELDS) + ["latency", "runtime", "met_sla", "slowdown"]
    )
    for r in results:
        writer.writerow(
            [getattr(r, f) for f in _TASK_FIELDS]
            + [r.latency, r.runtime, int(r.met_sla), f"{r.slowdown:.6f}"]
        )
    return out.getvalue()


def timeline_chart(
    trace,
    width: int = 72,
    max_jobs: int = 24,
) -> str:
    """Render a simulation trace as an ASCII Gantt chart.

    Each job gets one row spanning dispatch to finish: ``.`` while
    waiting in the task queue, ``=`` while running, ``F`` at the finish
    mark.  Useful for eyeballing queueing vs runtime in examples and
    bug reports.

    Args:
        trace: A :class:`repro.sim.trace.Trace` with DISPATCH / START /
            FINISH records.
        width: Chart width in characters.
        max_jobs: Rows to render (earliest-dispatched first).
    """
    from repro.sim.trace import TraceEvent

    spans = {}
    for record in trace.records:
        entry = spans.setdefault(
            record.job_id, {"dispatch": None, "start": None, "finish": None}
        )
        if record.event is TraceEvent.DISPATCH:
            entry["dispatch"] = record.cycle
        elif record.event is TraceEvent.START and entry["start"] is None:
            entry["start"] = record.cycle
        elif record.event is TraceEvent.FINISH:
            entry["finish"] = record.cycle
    spans = {
        job: s for job, s in spans.items()
        if s["dispatch"] is not None and s["finish"] is not None
    }
    if not spans:
        raise ValueError("trace holds no complete job lifecycles")
    horizon = max(s["finish"] for s in spans.values())
    if horizon <= 0:
        raise ValueError("empty timeline")
    ordered = sorted(spans.items(), key=lambda kv: kv[1]["dispatch"])
    label_w = max(len(j) for j, _ in ordered[:max_jobs])

    def col(cycle):
        return min(width - 1, int(width * cycle / horizon))

    lines = [f"{'job':<{label_w}s} |{'-' * width}| 0 .. {horizon:,.0f} cyc"]
    for job, s in ordered[:max_jobs]:
        row = [" "] * width
        start = s["start"] if s["start"] is not None else s["finish"]
        for c in range(col(s["dispatch"]), col(start)):
            row[c] = "."
        for c in range(col(start), col(s["finish"])):
            row[c] = "="
        row[col(s["finish"])] = "F"
        lines.append(f"{job:<{label_w}s} |{''.join(row)}|")
    if len(ordered) > max_jobs:
        lines.append(f"... {len(ordered) - max_jobs} more jobs not shown")
    return "\n".join(lines)


def results_from_csv(text: str) -> Sequence[TaskResult]:
    """Rebuild per-task records from :func:`results_to_csv` output."""
    reader = csv.DictReader(io.StringIO(text))
    results = []
    for row in reader:
        results.append(
            TaskResult(
                task_id=row["task_id"],
                network_name=row["network_name"],
                priority=int(row["priority"]),
                dispatch_cycle=float(row["dispatch_cycle"]),
                started_at=float(row["started_at"]),
                finished_at=float(row["finished_at"]),
                qos_target_cycles=float(row["qos_target_cycles"]),
                isolated_cycles=float(row["isolated_cycles"]),
                preemptions=int(row["preemptions"]),
                tile_repartitions=int(row["tile_repartitions"]),
                bw_reconfigs=int(row["bw_reconfigs"]),
                stall_cycles=float(row["stall_cycles"]),
            )
        )
    return results
