"""Performance trajectory benchmark: serial vs parallel, engine hot path.

Times a fixed reference matrix (the paper's nine scenarios at a reduced
size) through the serial and parallel experiment executors, measures
the simulator's event rate with and without the incremental
(epoch-cached) hot path, checks the two executor paths produce
bit-identical metrics, and writes everything to ``BENCH_perf.json`` so
every future performance PR has a trajectory to beat.

Both timed legs run warm and symmetric: the parent's caches are
pre-built, then the worker pool is started and cache-warmed (via the
executor's pool initializer plus a barrier-rendezvoused probe per
worker) before *either* leg's timer starts — spawn-start hosts no
longer pay worker cold-start inside the timed region (the PR 1 review
flag), and fork-start workers snapshot the parent before the serial
leg can build up extra memo state for them to inherit.
``host.start_method`` and ``parallel.cache`` in the JSON record the
start method and the aggregated per-cell cache hit/miss counters.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py [--tasks 120]
        [--seeds 1,2] [--workers N] [--out BENCH_perf.json]

The matrix is also run as 2 shard partials (``repro.experiments.
sharding.run_shard`` on the warm pool) and merged back; ``shards`` in
the JSON records per-shard wall time — ``max_shard_seconds`` projects
a 2-host run — so the shard-scaling trajectory is tracked alongside
the single-host one.

``robustness`` in the JSON records the supervised executor's
trajectory: the same matrix through ``run_supervised`` (per-cell
submission with retry/timeout bookkeeping) fault-free, its overhead
ratio vs the plain parallel leg (informational, not gated), and the
warm-pool's ``warmup_timeouts`` telemetry.  The supervised run's
metrics must still be bit-identical to serial.

``coordinator`` in the JSON records the dynamic work-stealing
trajectory: the same matrix drained through an in-process
``Coordinator`` by two lease-stepping ``SweepWorker``s sharing the
warm pool.  ``efficiency_vs_static_shards`` (static shard wall total
/ coordinator busy total) is the pure cost of leasing in
cost-balanced batches instead of pre-planning slices and is gated
>= 0.67; ``projected_2_worker_speedup`` projects a two-worker
distributed run the way ``max_shard_seconds`` projects two hosts.

``decisions`` in the JSON records the decision-cadence trajectory:
plans emitted/applied/no-op and the allocation-epoch cache reuse
ratio under the every-event and block-boundary cadences (both pure
simulation counters, deterministic per configuration).

Exit status is non-zero when the parallel path or the sharded merge
produced different metrics than the serial path, or when any of the
controlled ratio gates fail: the engine's ``event_rate_speedup``
must be >= 1.0, ``plan_seam_speedup`` must be >= 0.95 (parity within
measurement noise; the pre-fix seam regression measured ~0.92 and
fails this floor) and the block-boundary cadence
must achieve a strictly higher epoch-cache reuse ratio than
every-event.  The raw serial/parallel wall-clock ``speedup`` is
recorded but deliberately *not* gated — on a 1-CPU container a
process pool can only add overhead, which made the old wall-clock
gate flaky; the ratio metrics are same-process A/Bs of deterministic
work and cannot be perturbed by box load.

``--engine-only`` runs just the engine microbench, the
reference-matrix scalar-vs-vector identity spot check, and the
plan-seam gates (including the fresh-run-vs-recorded-baseline
comparison when ``--out`` exists) — the fast mode ``scripts/ci.sh``
invokes.
"""

from __future__ import annotations

import os

# Pin the BLAS/OpenMP thread pools to one thread BEFORE numpy can
# load (the repro imports below pull it in): the bench measures
# single-thread event rates and ratio A/Bs, and a library-spawned
# thread pool would turn them into a function of the box's core
# count.  ``setdefault`` so an explicit override in the environment
# still wins.
for _var in (
    "OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"
):
    os.environ.setdefault(_var, "1")

import argparse
import json
import multiprocessing
import sys
import time
from typing import Dict, List, Optional

from repro.config import DEFAULT_SOC
from repro.core.latency import warm_network_cost_cache
from repro.core.policy import MoCAPolicy
from repro.experiments.parallel import (
    ParallelRunner,
    Supervision,
    matrices_identical,
)
from repro.experiments.results import (
    DECISION_COUNTER_FIELDS,
    SweepResults,
    cell_manifest,
)
from repro.experiments.runner import (
    default_policies,
    run_cell_detail,
    run_matrix,
    standard_matrix,
)
from repro.experiments.execution import (
    Coordinator,
    InProcessTransport,
    SweepWorker,
)
from repro.experiments.sharding import run_shard
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import workload_set
from repro.sim.engine import Simulator, run_simulation
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator

# Floor for the plan-seam A/B gate (declarative vs imperative seam):
# parity within measurement noise on the 1-CPU reference box.  The
# pre-fix seam regression measured ~0.92 and fails this floor.
_PLAN_SEAM_FLOOR = 0.95

# Floor for the horizon-kernel A/B gate (kernel vs incremental
# single-step engine, best-of-rounds, same box/process): the kernel
# measures ~1.5-1.8x on the reference workload, so 1.5 trips on a
# real regression while the doubled-reps re-measure backstop absorbs
# noise dips.
_KERNEL_FLOOR = 1.5

try:
    import numpy as _numpy

    _NUMPY_VERSION: Optional[str] = _numpy.__version__
except ImportError:  # the engine's scalar paths run without numpy
    _NUMPY_VERSION = None


class _AlwaysRecomputeSimulator(Simulator):
    """The seed behaviour for comparison: scalar per-job solves with
    the allocation-epoch cache and the per-block prediction memos
    defeated, so every event re-predicts every block and re-solves
    the arbiter — same algorithm, no reuse, no vectorization."""

    def __init__(self, *args, **kwargs):
        kwargs["solver"] = "scalar"
        super().__init__(*args, **kwargs)

    def _times_now(self):
        # The engine's internal hot-path probe (current_block_times is
        # only the external proxy wrapper now); hooking it here keeps
        # the defeat effective on every event.
        self._times_epoch = -1
        for job in self.running:
            job.current_block.clear_predict_memo()
        return super()._times_now()


class _NoFastPathMoCA(MoCAPolicy):
    """MoCA without the boundary-counter decision fast path (the
    policy as shipped at the plan-seam PR)."""

    fast_path = False


class _ImperativeMoCA(MoCAPolicy):
    """Pre-plan-seam MoCA: identical decisions, applied imperatively.

    The engine sees ``emits_plans = False`` and drives ``on_event``,
    which recomputes the full decision round every event (no boundary
    fast path) and pushes each action through the direct engine
    primitives — every mutation charging its own stall and bumping
    the allocation epoch individually, exactly the seam the
    declarative controller replaced.  The primitives share their
    no-op detection and stall charging with the controller, so the
    simulated metrics stay bit-identical and the A/B below measures
    pure seam overhead.
    """

    fast_path = False

    @property
    def emits_plans(self) -> bool:
        return False

    def on_event(self, sim) -> None:
        plan = MoCAPolicy.decide(self, sim)
        jobs = sim.jobs
        for jid, tiles in plan.admissions:
            sim.start_job(jobs[jid], tiles)
        for jid, tiles in plan.tiles:
            sim.set_tiles(jobs[jid], tiles)
        for jid, cap in plan.bw_caps:
            sim.set_bw_cap(jobs[jid], cap)


#: The engine microbench legs: label -> (simulator class, policy
#: factory).  ``kernel`` (the engine default: epoch-horizon batched
#: advance) is the shipping configuration; ``incremental`` is the
#: single-step vectorized path it replaced as default (kept as the
#: kernel's oracle and as the reference leg of the historical
#: ratios); the rest are controlled comparators.  The non-kernel legs
#: pin their solver explicitly — the engine default is now the
#: kernel, and each ratio must keep comparing what it always
#: compared.
_ENGINE_LEGS = (
    ("incremental",
     lambda *a, **kw: Simulator(*a, solver="vector", **kw),
     MoCAPolicy),
    ("kernel", Simulator, MoCAPolicy),
    ("scalar", lambda *a, **kw: Simulator(*a, solver="scalar", **kw),
     MoCAPolicy),
    ("imperative",
     lambda *a, **kw: Simulator(*a, solver="vector", **kw),
     _ImperativeMoCA),
    ("always_recompute", _AlwaysRecomputeSimulator, _NoFastPathMoCA),
)


def _bench_engine(
    num_tasks: int, seed: int, reps: int = 3
) -> Dict[str, object]:
    """Event-rate micro-benchmark of one reference MoCA simulation.

    Five legs over the same task list: the epoch-horizon kernel (the
    shipping engine default), the incremental single-step vectorized
    path it replaced as default, the scalar reference oracle, the
    imperative-seam comparator, and the seed model (scalar, caches
    defeated).  Every leg is simulated ``reps`` times in interleaved
    rounds and the fastest wall time is kept (the simulation is
    deterministic; only the clock is noisy), every leg must produce
    bit-identical results, and the ratios — not the raw wall-clock
    rates — are what the gates read:

    - ``event_rate_speedup``: incremental vs seed model (the ROADMAP
      item 2 trajectory number);
    - ``kernel.event_rate_speedup``: horizon kernel vs the
      incremental single-step engine, gated >= 1.5;
    - ``plan_seam_speedup``: incremental (declarative) vs imperative
      seam — the plan-seam regression A/B, gated >= 0.95 (parity
      within noise; the pre-fix regression sat at ~0.92);
    - ``vector_speedup``: vectorized vs scalar solver,
      informational.

    Each ratio is a ratio of per-leg *best* times.  The legs are
    deterministic, so each has one true cost and timing noise is
    purely additive — the minimum over rounds is the low-variance
    estimator.  (A paired per-round median was tried first and swung
    roughly +/-5% on the 1-CPU reference box; best-of ratios hold
    within about +/-2% there.)
    """
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    gen = WorkloadGenerator(
        soc, workload_set("C"), mem, QosModel(soc, slack_factor=2.0)
    )
    tasks = gen.generate(
        WorkloadConfig(
            num_tasks=num_tasks,
            qos_level=QosLevel.MEDIUM,
            load_factor=0.7,
            seed=seed,
        )
    )
    out: Dict[str, object] = {}
    results_by_leg = {}
    times: Dict[str, List[float]] = {label: []
                                     for label, _, _ in _ENGINE_LEGS}
    last_result = {}
    # Interleaved rounds: each rep times every leg once, in the same
    # order, so slow drift in box speed hits every leg's best time
    # from the same era of the run; the ratio metrics below compare
    # per-leg bests and the absolute rates keep the same bests.
    for _ in range(max(reps, 1)):
        for label, sim_factory, policy_cls in _ENGINE_LEGS:
            policy = policy_cls()
            policy.reset()
            sim = sim_factory(soc, tasks, policy, mem=mem)
            t0 = time.perf_counter()
            result = sim.run()
            elapsed = time.perf_counter() - t0
            times[label].append(elapsed)
            last_result[label] = result
    for label, _, _ in _ENGINE_LEGS:
        result = last_result[label]
        best = min(times[label])
        out[label] = {
            "seconds": round(best, 4),
            "events": result.events,
            "events_per_sec": round(result.events / best, 1),
            "block_time_recomputes": result.block_time_recomputes,
            "block_time_reuses": result.block_time_reuses,
            "makespan": result.makespan,
        }
        # Full per-task results for the divergence gate below (makespan
        # alone could mask a cache bug that leaves the last finish
        # time untouched).
        results_by_leg[label] = tuple(result.results)
    reference = results_by_leg["incremental"]
    for label, leg_results in results_by_leg.items():
        if (
            leg_results != reference
            or out[label]["makespan"] != out["incremental"]["makespan"]
        ):
            raise AssertionError(
                f"engine leg {label!r} diverged from the incremental "
                f"configuration"
            )
    def best_ratio(other: str) -> float:
        return min(times[other]) / min(times["incremental"])

    out["event_rate_speedup"] = round(
        best_ratio("always_recompute"), 3
    )
    out["plan_seam_speedup"] = round(best_ratio("imperative"), 3)
    out["vector_speedup"] = round(best_ratio("scalar"), 3)
    # The horizon-kernel A/B: kernel (shipping default) vs the
    # incremental single-step engine it replaced, gated >= 1.5.
    out["kernel"]["event_rate_speedup"] = round(
        min(times["incremental"]) / min(times["kernel"]), 3
    )
    return out


def _bench_engine_stable(
    num_tasks: int, seed: int, reps: int
) -> Dict[str, object]:
    """``_bench_engine`` with one automatic re-measure backstop.

    If the first measurement lands below the plan-seam or the
    horizon-kernel floor, the bench is re-run once with doubled
    rounds and that measurement is the one reported.  A real
    regression (the pre-fix seam sat at ~0.92; a disabled kernel
    measures ~1.0) fails both measurements; a one-off noise dip at
    true parity almost never survives the doubled-reps re-measure,
    which keeps the CI gate's flake rate negligible without loosening
    the floors.
    """
    engine = _bench_engine(num_tasks, seed=seed, reps=reps)
    below = [
        f"plan seam x{engine['plan_seam_speedup']} < "
        f"{_PLAN_SEAM_FLOOR}"
    ] if engine["plan_seam_speedup"] < _PLAN_SEAM_FLOOR else []
    if engine["kernel"]["event_rate_speedup"] < _KERNEL_FLOOR:
        below.append(
            f"kernel x{engine['kernel']['event_rate_speedup']} < "
            f"{_KERNEL_FLOOR}"
        )
    if below:
        print(
            f"{'; '.join(below)} below floor; re-measuring once "
            f"with {reps * 2} rounds",
            file=sys.stderr,
        )
        engine = _bench_engine(num_tasks, seed=seed, reps=reps * 2)
    return engine


def _bench_decisions(num_tasks: int, seeds) -> Dict[str, object]:
    """Decision/epoch telemetry per cadence over the reference matrix.

    Runs the 9-scenario x 4-policy reference matrix serially under the
    every-event (default) and block-boundary cadences and aggregates
    the engine's decision counters.  The counters are pure simulation
    state — deterministic per configuration, independent of host
    speed — so the gate below (block-boundary must achieve a
    *strictly higher* epoch-cache reuse ratio than every-event) can
    never fail spuriously.
    """
    from dataclasses import replace

    out: Dict[str, object] = {}
    for cadence in ("every-event", "block-boundary"):
        specs = [
            replace(spec, decision_cadence=cadence)
            for spec in standard_matrix(num_tasks=num_tasks, seeds=seeds)
        ]
        totals = {name: 0 for name in DECISION_COUNTER_FIELDS}
        t0 = time.perf_counter()
        for spec in specs:
            for name, factory in default_policies().items():
                for seed in spec.seeds:
                    _, sim_result = run_cell_detail(
                        spec, name, factory, seed
                    )
                    for counter in DECISION_COUNTER_FIELDS:
                        totals[counter] += getattr(sim_result, counter)
        ratio = totals["block_time_reuses"] / max(
            totals["block_time_recomputes"], 1
        )
        out[cadence] = {
            **totals,
            "epoch_reuse_ratio": round(ratio, 6),
            "seconds": round(time.perf_counter() - t0, 3),
        }
    every = out["every-event"]["epoch_reuse_ratio"]
    regulated = out["block-boundary"]["epoch_reuse_ratio"]
    out["gate"] = {
        "passed": regulated > every,
        "note": (
            "block-boundary cadence must reuse the allocation-epoch "
            "cache at a strictly higher rate than every-event on the "
            "reference matrix"
        ),
    }
    return out


def _check_matrix_identity(num_tasks: int, seed: int) -> int:
    """Scalar-vs-vector identity spot check on the reference matrix.

    Runs every (scenario, policy) cell of the 9-scenario matrix once
    under each solver and asserts the full per-task results (not just
    the makespan) are bit-identical.  Returns the number of cells
    checked.
    """
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    checked = 0
    for spec in standard_matrix(num_tasks=num_tasks, seeds=(seed,)):
        qos = QosModel(soc, slack_factor=spec.slack_factor)
        gen = WorkloadGenerator(soc, spec.networks(), mem, qos)
        tasks = gen.generate(spec.workload_config(seed))
        for name, factory in default_policies().items():
            legs = {
                solver: run_simulation(
                    soc, tasks, factory(), mem=mem,
                    cadence=spec.cadence(), solver=solver,
                )
                for solver in ("vector", "scalar")
            }
            if (
                tuple(legs["vector"].results)
                != tuple(legs["scalar"].results)
                or legs["vector"].makespan != legs["scalar"].makespan
            ):
                raise AssertionError(
                    f"vector/scalar divergence: scenario "
                    f"{spec.label()!r}, policy {name!r}, seed {seed}"
                )
            checked += 1
    return checked


def _engine_only(args) -> int:
    """The ``--engine-only`` mode backing ``scripts/ci.sh``'s
    microbench gate: the four-leg engine bench (with its built-in
    all-legs identity assertion), the reference-matrix scalar/vector
    identity spot check, and the plan-seam gates — the in-run
    ``plan_seam_speedup >= 0.95`` ratio, plus, when ``--out`` already
    exists, the fresh plan-seam rate measured against the imperative
    baseline recorded there (the cross-run form of the same
    assertion; the recorded number is from the same class of box, and
    the ratio gate is the flake-proof primary)."""
    engine = _bench_engine_stable(args.tasks, seed=args.seeds[0],
                                  reps=args.engine_reps)
    print(
        f"engine: {engine['kernel']['events_per_sec']:,} ev/s kernel "
        f"vs {engine['incremental']['events_per_sec']:,} ev/s "
        f"incremental (x{engine['kernel']['event_rate_speedup']}), "
        f"x{engine['plan_seam_speedup']} vs imperative seam, "
        f"x{engine['event_rate_speedup']} vs seed model, "
        f"x{engine['vector_speedup']} vs scalar oracle",
        file=sys.stderr,
    )
    cells = _check_matrix_identity(
        max(args.tasks // 3, 20), seed=args.seeds[0]
    )
    print(
        f"identity: vector == scalar on {cells} reference-matrix "
        f"cells",
        file=sys.stderr,
    )
    failed = False
    if engine["plan_seam_speedup"] < _PLAN_SEAM_FLOOR:
        print(
            f"FAIL: plan seam slower than imperative seam "
            f"(x{engine['plan_seam_speedup']} < {_PLAN_SEAM_FLOOR})",
            file=sys.stderr,
        )
        failed = True
    if engine["kernel"]["event_rate_speedup"] < _KERNEL_FLOOR:
        print(
            f"FAIL: horizon kernel below its floor vs the "
            f"incremental engine "
            f"(x{engine['kernel']['event_rate_speedup']} < "
            f"{_KERNEL_FLOOR})",
            file=sys.stderr,
        )
        failed = True
    if os.path.exists(args.out):
        with open(args.out) as fh:
            recorded = json.load(fh).get("engine", {})
        baseline = recorded.get("imperative", {}).get("events_per_sec")
        if baseline is not None:
            # Cross-run rates compare different box states, so this
            # form gets a 0.7x noise allowance; the pre-fix engine ran
            # at ~0.3x the recorded imperative rate, so a real
            # regression still trips it.  The paired in-run ratio
            # above is the precise gate.
            fresh = engine["incremental"]["events_per_sec"]
            if fresh < 0.7 * baseline:
                print(
                    f"FAIL: plan seam ({fresh:,} ev/s) below 0.7x "
                    f"the recorded imperative baseline ({baseline:,} "
                    f"ev/s) in {args.out}",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"gate: plan seam {fresh:,} ev/s within noise of "
                    f"the recorded imperative baseline "
                    f"({baseline:,} ev/s)",
                    file=sys.stderr,
                )
    return 1 if failed else 0


def _prewarm_caches() -> None:
    """Warm the parent's network-cost and predict-memo caches up front
    so the timed serial leg starts warm — symmetric with the parallel
    leg, whose workers are warmed by the pool initializer before its
    timer starts."""
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    warm_network_cost_cache(workload_set("C"), soc, mem)


def _bench_precompute(num_tasks: int, seeds) -> Dict[str, object]:
    """Cross-cell precompute sharing A/B on a 2-worker sweep.

    Runs a reduced reference matrix through a cold 2-worker runner
    (parent cache cleared, warm-start off) twice: once bare, once
    against an on-disk :class:`~repro.core.latency.PrecomputeStore`
    pre-seeded from this process's warm caches.  The per-cell
    ``cost_cache_misses`` totals (deterministic cache telemetry, not
    wall clock) are the measurement: the store leg must rebuild
    strictly less than the cold leg — the sharing gate.  Runs LAST
    (it clears this process's caches).
    """
    import shutil
    import tempfile

    from repro.core.latency import (
        clear_network_cost_cache,
        precompute_stats,
        reset_precompute_stats,
        warm_network_cost_cache as warm,
    )
    from repro.experiments.parallel import _spec_model_names
    from repro.models.zoo import build_model

    specs = standard_matrix(num_tasks=num_tasks, seeds=seeds)
    soc = DEFAULT_SOC
    store_dir = tempfile.mkdtemp(prefix="bench-precompute-")
    try:
        reset_precompute_stats()
        # Seed the store from the warm parent (pure cache hits +
        # disk saves).
        models = [
            build_model(name) for name in _spec_model_names(specs)
        ]
        warm(models, soc, store=store_dir)
        saves = precompute_stats()["precompute_saves"]

        legs: Dict[str, object] = {}
        matrices = {}
        for leg, store in (("cold", None), ("with_store", store_dir)):
            clear_network_cost_cache()
            runner = ParallelRunner(
                workers=2, warm_start=False, precompute_dir=store
            )
            t0 = time.perf_counter()
            matrices[leg] = runner.run_matrix(specs)
            seconds = time.perf_counter() - t0
            cache = runner.last_sweep.cache_stats()
            legs[leg] = {
                "seconds": round(seconds, 3),
                "mode": runner.last_mode,
                "cost_cache_misses": cache["cost_cache_misses"],
                "cost_cache_hits": cache["cost_cache_hits"],
            }
        cold = legs["cold"]["cost_cache_misses"]
        shared = legs["with_store"]["cost_cache_misses"]
        return {
            **legs,
            "store_entries_saved": saves,
            "store_stats": precompute_stats(),
            "identical_metrics": matrices_identical(
                matrices["cold"], matrices["with_store"]
            ),
            "gate": {
                "passed": cold > 0 and shared < cold,
                "note": (
                    "a 2-worker sweep warmed from the precompute "
                    "store must rebuild strictly fewer network costs "
                    "than the same sweep cold (per-cell "
                    "cost_cache_misses totals; deterministic)"
                ),
            },
        }
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--tasks", type=int, default=120)
    parser.add_argument(
        "--seeds",
        type=lambda s: tuple(int(x) for x in s.split(",") if x),
        default=(1, 2),
    )
    parser.add_argument(
        "--workers", type=int, default=max(2, os.cpu_count() or 1)
    )
    parser.add_argument("--out", default="BENCH_perf.json")
    parser.add_argument(
        "--engine-reps", type=int, default=5,
        help="interleaved timing rounds over all engine-bench legs "
             "(per-leg best times feed both the gated ratios and the "
             "absolute rates; doubled once automatically if the "
             "plan-seam ratio lands below its floor)",
    )
    parser.add_argument(
        "--engine-only", action="store_true",
        help="run only the engine microbench + identity spot check "
        "and its gates (the scripts/ci.sh mode); does not rewrite "
        "--out",
    )
    args = parser.parse_args(argv)
    if not args.seeds:
        parser.error("--seeds must name at least one seed")
    if args.engine_only:
        return _engine_only(args)
    cpu_count = os.cpu_count() or 1

    print(
        f"reference matrix: 9 scenarios x 4 policies x {len(args.seeds)} "
        f"seed(s), {args.tasks} tasks/cell",
        file=sys.stderr,
    )

    engine = _bench_engine_stable(args.tasks, seed=args.seeds[0],
                                  reps=args.engine_reps)
    print(
        f"engine: {engine['kernel']['events_per_sec']:,} ev/s kernel "
        f"vs {engine['incremental']['events_per_sec']:,} ev/s "
        f"incremental (x{engine['kernel']['event_rate_speedup']}), "
        f"{engine['always_recompute']['events_per_sec']:,} ev/s "
        f"seed model (x{engine['event_rate_speedup']}), "
        f"x{engine['plan_seam_speedup']} vs imperative seam, "
        f"x{engine['vector_speedup']} vs scalar oracle",
        file=sys.stderr,
    )

    # Decision-cadence trajectory: one seed keeps the two extra serial
    # matrix passes cheap; the counters are deterministic either way.
    decisions = _bench_decisions(args.tasks, seeds=args.seeds[:1])
    print(
        f"decisions: epoch reuse ratio "
        f"{decisions['every-event']['epoch_reuse_ratio']:.4f} "
        f"every-event vs "
        f"{decisions['block-boundary']['epoch_reuse_ratio']:.4f} "
        f"block-boundary "
        f"(gate {'ok' if decisions['gate']['passed'] else 'FAILED'})",
        file=sys.stderr,
    )

    specs = standard_matrix(num_tasks=args.tasks, seeds=args.seeds)
    start_method = multiprocessing.get_start_method()
    _prewarm_caches()

    # Spin the worker pool up and warm every worker's caches BEFORE
    # either timer starts.  Spawn-start workers previously paid the
    # full cold-start inside the timed parallel leg — which could
    # fail the speed gate spuriously on spawn hosts.  Starting the
    # pool *before the serial leg* also keeps fork hosts symmetric:
    # workers fork from the parent at exactly the _prewarm_caches
    # state, so the serial run's additional in-process memo build-up
    # (reduced-bandwidth predict points it probes along the way)
    # cannot leak into the workers and subsidise the parallel leg.
    runner = ParallelRunner(workers=args.workers or None)
    warm_pids = runner.start_pool(specs)
    warmup_timeouts = runner.last_warmup_timeouts
    print(
        f"pool warmed: {len(warm_pids)} worker(s), "
        f"{warmup_timeouts} warmup timeout(s), "
        f"start_method={start_method}",
        file=sys.stderr,
    )

    t0 = time.perf_counter()
    serial_matrix = run_matrix(specs)
    serial_s = time.perf_counter() - t0
    print(f"serial matrix:   {serial_s:6.2f}s", file=sys.stderr)

    t0 = time.perf_counter()
    parallel_matrix = runner.run_matrix(specs)
    parallel_s = time.perf_counter() - t0
    cell_cache = runner.last_sweep.cache_stats()
    # Snapshot mode/pids now: the shard legs below reuse the runner
    # and overwrite last_mode / last_sweep.
    parallel_mode = runner.last_mode
    parallel_pids = len(runner.last_sweep.worker_pids())
    parallel_timings = list(runner.last_timings)
    print(
        f"parallel matrix: {parallel_s:6.2f}s "
        f"(workers={runner.workers}, mode={parallel_mode}, "
        f"cost cache {cell_cache['cost_cache_hits']} hits / "
        f"{cell_cache['cost_cache_misses']} misses)",
        file=sys.stderr,
    )

    # Robustness trajectory: the same matrix through the supervised
    # executor (per-cell submission, retry/timeout bookkeeping, cell
    # journaling hooks) with no faults injected.  The ratio vs the
    # plain parallel leg is the pure supervision overhead —
    # informational, not gated, but tracked so a regression in the
    # supervisor's dispatch loop shows up in the trajectory.
    t0 = time.perf_counter()
    supervised_acc = runner.run_supervised(
        specs, supervision=Supervision(backoff_base=0.0)
    )
    supervised_s = time.perf_counter() - t0
    supervised_mode = runner.last_mode
    supervised_identical = matrices_identical(
        serial_matrix, supervised_acc.matrix()
    )
    supervision_overhead = (
        supervised_s / parallel_s if parallel_s > 0 else float("inf")
    )
    print(
        f"supervised matrix: {supervised_s:6.2f}s "
        f"(mode={supervised_mode}, "
        f"x{supervision_overhead:.2f} vs plain parallel, "
        f"degraded={supervised_acc.degraded})",
        file=sys.stderr,
    )

    # Shard-scaling trajectory: the same matrix as 2 shard partials
    # (reusing the warm pool), merged back and checked against serial.
    # max(shard seconds) projects the wall time of a 2-host run; every
    # sharding PR should improve (or hold) these numbers.
    num_shards = 2
    manifest = cell_manifest(specs)
    shard_partials = []
    for i in range(num_shards):
        partial = run_shard(manifest, i, num_shards, runner=runner)
        shard = partial["shard"]
        print(
            f"shard {i + 1}/{num_shards}:  {shard['wall_seconds']:6.2f}s "
            f"({len(partial['cells'])} cells, cost {shard['cost']}, "
            f"mode={shard['mode']})",
            file=sys.stderr,
        )
        shard_partials.append(partial)

    # Coordinator/lease trajectory (dynamic work-stealing): the same
    # matrix drained through an in-process coordinator by two workers
    # sharing the warm pool, stepped alternately so every lease
    # round-trip sits inside the measured path.  The busy-time ratio
    # vs the static shard legs is the pure cost of leasing in
    # cost-balanced batches instead of pre-planning two slices — it
    # is gated (floor 0.67: dynamic leasing may cost at most ~1.5x
    # the static planner's wall total, in practice it is ~1.0).
    # max per-worker busy seconds projects a 2-worker distributed run.
    coordinator = Coordinator(manifest, lease_ttl=None, workers_hint=2)
    coord_transport = InProcessTransport(coordinator)
    bench_workers = [
        SweepWorker(coord_transport, worker_id=name, runner=runner)
        for name in ("bench-a", "bench-b")
    ]
    coord_busy = {w.worker_id: 0.0 for w in bench_workers}
    coord_leases = {w.worker_id: 0 for w in bench_workers}
    t0 = time.perf_counter()
    while not coordinator.drained:
        progressed = False
        for worker in bench_workers:
            outcome = worker.step()
            if outcome is not None:
                coord_busy[worker.worker_id] += outcome["seconds"]
                coord_leases[worker.worker_id] += 1
                progressed = True
        if not progressed:  # nothing leasable and not drained: stuck
            break
    coordinator_s = time.perf_counter() - t0
    runner.close_pool()
    coordinator_identical = (
        coordinator.acc.complete
        and matrices_identical(serial_matrix, coordinator.acc.matrix())
    )
    coord_busy_total = sum(coord_busy.values())
    shard_total = sum(
        p["shard"]["wall_seconds"] for p in shard_partials
    )
    coordinator_efficiency = (
        shard_total / coord_busy_total if coord_busy_total > 0
        else 0.0
    )
    coord_status = coordinator.status()
    print(
        f"coordinator:     {coordinator_s:6.2f}s "
        f"({sum(coord_leases.values())} leases over 2 workers, "
        f"x{1 / coordinator_efficiency:.2f} busy time vs static "
        f"shards)" if coordinator_efficiency > 0 else
        "coordinator:     stalled",
        file=sys.stderr,
    )
    merged_matrix = SweepResults.from_partials(shard_partials).matrix()
    shards_identical = matrices_identical(serial_matrix, merged_matrix)
    shard_seconds = [
        p["shard"]["wall_seconds"] for p in shard_partials
    ]

    # Cross-cell precompute sharing A/B — LAST of the sweep legs (it
    # clears this process's warm caches).  A reduced matrix keeps it
    # cheap; the measurement is deterministic cache telemetry, not
    # wall clock.
    precompute = _bench_precompute(
        max(args.tasks // 6, 10), seeds=args.seeds[:1]
    )
    print(
        f"precompute:      cold 2-worker sweep rebuilt "
        f"{precompute['cold']['cost_cache_misses']} network costs, "
        f"store-warmed rebuilt "
        f"{precompute['with_store']['cost_cache_misses']} "
        f"(store: {precompute['store_entries_saved']} entries; gate "
        f"{'ok' if precompute['gate']['passed'] else 'FAILED'})",
        file=sys.stderr,
    )

    identical = matrices_identical(serial_matrix, parallel_matrix)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cell_seconds = sorted(t.seconds for t in parallel_timings)
    # The perf gate reads the *controlled ratio* metrics — each one a
    # same-process A/B of deterministic work, immune to box load and
    # CPU count — rather than the raw serial/parallel wall-clock
    # ratio, which on 1-CPU containers measures only process-pool
    # overhead and made the old gate flaky (ROADMAP perf note).  The
    # wall-clock speedup stays recorded (informational) above.
    ratio_gates = {
        "event_rate_speedup": (engine["event_rate_speedup"], 1.0),
        "kernel_event_rate_speedup": (
            engine["kernel"]["event_rate_speedup"], _KERNEL_FLOOR
        ),
        "plan_seam_speedup": (engine["plan_seam_speedup"],
                              _PLAN_SEAM_FLOOR),
        "epoch_reuse_ratio_improves": (
            1.0 if decisions["gate"]["passed"] else 0.0, 1.0
        ),
        "coordinator_efficiency": (coordinator_efficiency, 0.67),
        "precompute_store_sharing": (
            1.0 if precompute["gate"]["passed"] else 0.0, 1.0
        ),
    }
    gate_ok = all(v >= floor for v, floor in ratio_gates.values())

    report = {
        "reference": {
            "scenarios": len(specs),
            "policies": 4,
            "seeds": list(args.seeds),
            "tasks_per_cell": args.tasks,
            "cells": len(cell_seconds),
        },
        "host": {
            "cpu_count": cpu_count,
            "start_method": start_method,
            "numpy": _NUMPY_VERSION,
            "thread_pins": {
                var: os.environ.get(var)
                for var in (
                    "OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                    "MKL_NUM_THREADS",
                )
            },
        },
        "serial": {"seconds": round(serial_s, 3)},
        "parallel": {
            "seconds": round(parallel_s, 3),
            "workers": runner.workers,
            "mode": parallel_mode,
            "warmed_workers": len(warm_pids),
            "warmup_timeouts": warmup_timeouts,
            "worker_pids_seen": parallel_pids,
            "cache": {**cell_cache, "precompute": precompute},
            "cell_seconds_min": round(cell_seconds[0], 3),
            "cell_seconds_max": round(cell_seconds[-1], 3),
            "cell_seconds_mean": round(
                sum(cell_seconds) / len(cell_seconds), 3
            ),
        },
        "speedup": round(speedup, 3),
        "identical_metrics": identical,
        "shards": {
            "count": num_shards,
            "per_shard": [
                {
                    "index": i + 1,
                    "cells": len(p["cells"]),
                    "cost": p["shard"]["cost"],
                    "seconds": round(p["shard"]["wall_seconds"], 3),
                    "mode": p["shard"]["mode"],
                }
                for i, p in enumerate(shard_partials)
            ],
            "max_shard_seconds": round(max(shard_seconds), 3),
            "projected_2_host_speedup": round(
                serial_s / max(shard_seconds), 3
            ) if max(shard_seconds) > 0 else None,
            "merge_identical": shards_identical,
        },
        "coordinator": {
            "seconds": round(coordinator_s, 3),
            "workers": len(bench_workers),
            "leases": {
                name: coord_leases[name] for name in sorted(coord_leases)
            },
            "busy_seconds": {
                name: round(coord_busy[name], 3)
                for name in sorted(coord_busy)
            },
            "efficiency_vs_static_shards": round(
                coordinator_efficiency, 3
            ),
            "projected_2_worker_speedup": round(
                serial_s / max(coord_busy.values()), 3
            ) if max(coord_busy.values()) > 0 else None,
            "warmup_timeouts_telemetry": coord_status[
                "warmup_timeouts"
            ],
            "identical_metrics": coordinator_identical,
            "note": (
                "same matrix drained by 2 in-process lease-stepping "
                "workers on the warm pool; efficiency = static shard "
                "wall total / coordinator busy total (gated >= 0.67)"
            ),
        },
        "engine": engine,
        "decisions": decisions,
        "robustness": {
            "supervised_seconds": round(supervised_s, 3),
            "mode": supervised_mode,
            "overhead_vs_parallel": round(supervision_overhead, 3),
            "identical_metrics": supervised_identical,
            "degraded": supervised_acc.degraded,
            "warmup_timeouts": warmup_timeouts,
            "note": (
                "fault-free supervised executor vs plain parallel; "
                "the overhead ratio is informational (not gated)"
            ),
        },
        "gate": {
            "passed": gate_ok,
            "ratios": {
                name: {"value": value, "floor": floor}
                for name, (value, floor) in ratio_gates.items()
            },
            "wall_clock_speedup": round(speedup, 3),
            "note": (
                "gated on controlled same-process ratio metrics "
                "(engine event-rate and plan-seam speedups, "
                "epoch-reuse improvement, coordinator lease "
                "efficiency vs static shards); the raw wall-clock "
                "serial/parallel speedup is recorded but not gated "
                "(flaky on 1-CPU containers)"
            ),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(
        f"speedup x{speedup:.2f}, identical_metrics={identical} "
        f"-> {args.out}",
        file=sys.stderr,
    )

    if not identical:
        print("FAIL: parallel metrics differ from serial", file=sys.stderr)
        return 1
    if not shards_identical:
        print(
            "FAIL: sharded merge metrics differ from serial",
            file=sys.stderr,
        )
        return 1
    if not supervised_identical or supervised_acc.degraded:
        print(
            "FAIL: fault-free supervised run diverged from serial",
            file=sys.stderr,
        )
        return 1
    if not coordinator_identical:
        print(
            "FAIL: coordinator-drained metrics differ from serial",
            file=sys.stderr,
        )
        return 1
    if not precompute["identical_metrics"]:
        print(
            "FAIL: store-warmed sweep metrics differ from the cold "
            "sweep",
            file=sys.stderr,
        )
        return 1
    if not gate_ok:
        for name, (value, floor) in ratio_gates.items():
            if value < floor:
                print(
                    f"FAIL: ratio gate {name} = {value} < {floor}",
                    file=sys.stderr,
                )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
