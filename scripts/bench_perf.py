"""Performance trajectory benchmark: serial vs parallel, engine hot path.

Times a fixed reference matrix (the paper's nine scenarios at a reduced
size) through the serial and parallel experiment executors, measures
the simulator's event rate with and without the incremental
(epoch-cached) hot path, checks the two executor paths produce
bit-identical metrics, and writes everything to ``BENCH_perf.json`` so
every future performance PR has a trajectory to beat.

Both timed legs run warm and symmetric: the parent's caches are
pre-built, then the worker pool is started and cache-warmed (via the
executor's pool initializer plus a barrier-rendezvoused probe per
worker) before *either* leg's timer starts — spawn-start hosts no
longer pay worker cold-start inside the timed region (the PR 1 review
flag), and fork-start workers snapshot the parent before the serial
leg can build up extra memo state for them to inherit.
``host.start_method`` and ``parallel.cache`` in the JSON record the
start method and the aggregated per-cell cache hit/miss counters.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py [--tasks 120]
        [--seeds 1,2] [--workers N] [--out BENCH_perf.json]

The matrix is also run as 2 shard partials (``repro.experiments.
sharding.run_shard`` on the warm pool) and merged back; ``shards`` in
the JSON records per-shard wall time — ``max_shard_seconds`` projects
a 2-host run — so the shard-scaling trajectory is tracked alongside
the single-host one.

``robustness`` in the JSON records the supervised executor's
trajectory: the same matrix through ``run_supervised`` (per-cell
submission with retry/timeout bookkeeping) fault-free, its overhead
ratio vs the plain parallel leg (informational, not gated), and the
warm-pool's ``warmup_timeouts`` telemetry.  The supervised run's
metrics must still be bit-identical to serial.

``decisions`` in the JSON records the decision-cadence trajectory:
plans emitted/applied/no-op and the allocation-epoch cache reuse
ratio under the every-event and block-boundary cadences (both pure
simulation counters, deterministic per configuration).

Exit status is non-zero when the parallel path or the sharded merge
produced different metrics than the serial path, when the parallel
path was *slower* than serial while ``workers >= 2`` on a machine that
actually has >= 2 CPUs (on a 1-CPU box a process pool can only add
overhead, so the speed gate is informational there), or when the
block-boundary cadence fails to achieve a strictly higher epoch-cache
reuse ratio than every-event.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from typing import Dict, List, Optional

from repro.config import DEFAULT_SOC
from repro.core.latency import warm_network_cost_cache
from repro.core.policy import MoCAPolicy
from repro.experiments.parallel import (
    ParallelRunner,
    Supervision,
    matrices_identical,
)
from repro.experiments.results import (
    DECISION_COUNTER_FIELDS,
    SweepResults,
    cell_manifest,
)
from repro.experiments.runner import (
    default_policies,
    run_cell_detail,
    run_matrix,
    standard_matrix,
)
from repro.experiments.sharding import run_shard
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import workload_set
from repro.sim.engine import Simulator
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


class _AlwaysRecomputeSimulator(Simulator):
    """The seed behaviour for comparison: defeat the epoch cache and
    the per-block prediction memos so every event re-predicts every
    block and re-solves the arbiter — same algorithm, no reuse."""

    def current_block_times(self):
        self._times_epoch = -1
        for job in self.running:
            job.current_block.clear_predict_memo()
        return super().current_block_times()


def _bench_engine(num_tasks: int, seed: int) -> Dict[str, object]:
    """Event-rate micro-benchmark of one reference MoCA simulation."""
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    gen = WorkloadGenerator(
        soc, workload_set("C"), mem, QosModel(soc, slack_factor=2.0)
    )
    tasks = gen.generate(
        WorkloadConfig(
            num_tasks=num_tasks,
            qos_level=QosLevel.MEDIUM,
            load_factor=0.7,
            seed=seed,
        )
    )
    out: Dict[str, object] = {}
    for label, sim_cls in (
        ("incremental", Simulator),
        ("always_recompute", _AlwaysRecomputeSimulator),
    ):
        policy = MoCAPolicy()
        policy.reset()
        sim = sim_cls(soc, tasks, policy, mem=mem)
        t0 = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - t0
        out[label] = {
            "seconds": round(elapsed, 4),
            "events": result.events,
            "events_per_sec": round(result.events / elapsed, 1),
            "block_time_recomputes": result.block_time_recomputes,
            "block_time_reuses": result.block_time_reuses,
            "makespan": result.makespan,
        }
        # Full per-task results for the divergence gate below (makespan
        # alone could mask a cache bug that leaves the last finish
        # time untouched); stripped before the JSON is written.
        out[
            "_results_incremental" if sim_cls is Simulator
            else "_results_always"
        ] = tuple(result.results)
    inc = out["incremental"]
    base = out["always_recompute"]
    if (
        inc["makespan"] != base["makespan"]
        or out["_results_incremental"] != out["_results_always"]
    ):
        raise AssertionError(
            "incremental engine diverged from always-recompute engine"
        )
    del out["_results_incremental"], out["_results_always"]
    out["event_rate_speedup"] = round(
        inc["events_per_sec"] / base["events_per_sec"], 3
    )
    return out


def _bench_decisions(num_tasks: int, seeds) -> Dict[str, object]:
    """Decision/epoch telemetry per cadence over the reference matrix.

    Runs the 9-scenario x 4-policy reference matrix serially under the
    every-event (default) and block-boundary cadences and aggregates
    the engine's decision counters.  The counters are pure simulation
    state — deterministic per configuration, independent of host
    speed — so the gate below (block-boundary must achieve a
    *strictly higher* epoch-cache reuse ratio than every-event) can
    never fail spuriously.
    """
    from dataclasses import replace

    out: Dict[str, object] = {}
    for cadence in ("every-event", "block-boundary"):
        specs = [
            replace(spec, decision_cadence=cadence)
            for spec in standard_matrix(num_tasks=num_tasks, seeds=seeds)
        ]
        totals = {name: 0 for name in DECISION_COUNTER_FIELDS}
        t0 = time.perf_counter()
        for spec in specs:
            for name, factory in default_policies().items():
                for seed in spec.seeds:
                    _, sim_result = run_cell_detail(
                        spec, name, factory, seed
                    )
                    for counter in DECISION_COUNTER_FIELDS:
                        totals[counter] += getattr(sim_result, counter)
        ratio = totals["block_time_reuses"] / max(
            totals["block_time_recomputes"], 1
        )
        out[cadence] = {
            **totals,
            "epoch_reuse_ratio": round(ratio, 6),
            "seconds": round(time.perf_counter() - t0, 3),
        }
    every = out["every-event"]["epoch_reuse_ratio"]
    regulated = out["block-boundary"]["epoch_reuse_ratio"]
    out["gate"] = {
        "passed": regulated > every,
        "note": (
            "block-boundary cadence must reuse the allocation-epoch "
            "cache at a strictly higher rate than every-event on the "
            "reference matrix"
        ),
    }
    return out


def _prewarm_caches() -> None:
    """Warm the parent's network-cost and predict-memo caches up front
    so the timed serial leg starts warm — symmetric with the parallel
    leg, whose workers are warmed by the pool initializer before its
    timer starts."""
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    warm_network_cost_cache(workload_set("C"), soc, mem)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--tasks", type=int, default=120)
    parser.add_argument(
        "--seeds",
        type=lambda s: tuple(int(x) for x in s.split(",") if x),
        default=(1, 2),
    )
    parser.add_argument(
        "--workers", type=int, default=max(2, os.cpu_count() or 1)
    )
    parser.add_argument("--out", default="BENCH_perf.json")
    args = parser.parse_args(argv)
    if not args.seeds:
        parser.error("--seeds must name at least one seed")
    cpu_count = os.cpu_count() or 1

    print(
        f"reference matrix: 9 scenarios x 4 policies x {len(args.seeds)} "
        f"seed(s), {args.tasks} tasks/cell",
        file=sys.stderr,
    )

    engine = _bench_engine(args.tasks, seed=args.seeds[0])
    print(
        f"engine: {engine['incremental']['events_per_sec']:,} ev/s "
        f"incremental vs "
        f"{engine['always_recompute']['events_per_sec']:,} ev/s "
        f"always-recompute "
        f"(x{engine['event_rate_speedup']})",
        file=sys.stderr,
    )

    # Decision-cadence trajectory: one seed keeps the two extra serial
    # matrix passes cheap; the counters are deterministic either way.
    decisions = _bench_decisions(args.tasks, seeds=args.seeds[:1])
    print(
        f"decisions: epoch reuse ratio "
        f"{decisions['every-event']['epoch_reuse_ratio']:.4f} "
        f"every-event vs "
        f"{decisions['block-boundary']['epoch_reuse_ratio']:.4f} "
        f"block-boundary "
        f"(gate {'ok' if decisions['gate']['passed'] else 'FAILED'})",
        file=sys.stderr,
    )

    specs = standard_matrix(num_tasks=args.tasks, seeds=args.seeds)
    start_method = multiprocessing.get_start_method()
    _prewarm_caches()

    # Spin the worker pool up and warm every worker's caches BEFORE
    # either timer starts.  Spawn-start workers previously paid the
    # full cold-start inside the timed parallel leg — which could
    # fail the speed gate spuriously on spawn hosts.  Starting the
    # pool *before the serial leg* also keeps fork hosts symmetric:
    # workers fork from the parent at exactly the _prewarm_caches
    # state, so the serial run's additional in-process memo build-up
    # (reduced-bandwidth predict points it probes along the way)
    # cannot leak into the workers and subsidise the parallel leg.
    runner = ParallelRunner(workers=args.workers or None)
    warm_pids = runner.start_pool(specs)
    warmup_timeouts = runner.last_warmup_timeouts
    print(
        f"pool warmed: {len(warm_pids)} worker(s), "
        f"{warmup_timeouts} warmup timeout(s), "
        f"start_method={start_method}",
        file=sys.stderr,
    )

    t0 = time.perf_counter()
    serial_matrix = run_matrix(specs)
    serial_s = time.perf_counter() - t0
    print(f"serial matrix:   {serial_s:6.2f}s", file=sys.stderr)

    t0 = time.perf_counter()
    parallel_matrix = runner.run_matrix(specs)
    parallel_s = time.perf_counter() - t0
    cell_cache = runner.last_sweep.cache_stats()
    # Snapshot mode/pids now: the shard legs below reuse the runner
    # and overwrite last_mode / last_sweep.
    parallel_mode = runner.last_mode
    parallel_pids = len(runner.last_sweep.worker_pids())
    parallel_timings = list(runner.last_timings)
    print(
        f"parallel matrix: {parallel_s:6.2f}s "
        f"(workers={runner.workers}, mode={parallel_mode}, "
        f"cost cache {cell_cache['cost_cache_hits']} hits / "
        f"{cell_cache['cost_cache_misses']} misses)",
        file=sys.stderr,
    )

    # Robustness trajectory: the same matrix through the supervised
    # executor (per-cell submission, retry/timeout bookkeeping, cell
    # journaling hooks) with no faults injected.  The ratio vs the
    # plain parallel leg is the pure supervision overhead —
    # informational, not gated, but tracked so a regression in the
    # supervisor's dispatch loop shows up in the trajectory.
    t0 = time.perf_counter()
    supervised_acc = runner.run_supervised(
        specs, supervision=Supervision(backoff_base=0.0)
    )
    supervised_s = time.perf_counter() - t0
    supervised_mode = runner.last_mode
    supervised_identical = matrices_identical(
        serial_matrix, supervised_acc.matrix()
    )
    supervision_overhead = (
        supervised_s / parallel_s if parallel_s > 0 else float("inf")
    )
    print(
        f"supervised matrix: {supervised_s:6.2f}s "
        f"(mode={supervised_mode}, "
        f"x{supervision_overhead:.2f} vs plain parallel, "
        f"degraded={supervised_acc.degraded})",
        file=sys.stderr,
    )

    # Shard-scaling trajectory: the same matrix as 2 shard partials
    # (reusing the warm pool), merged back and checked against serial.
    # max(shard seconds) projects the wall time of a 2-host run; every
    # sharding PR should improve (or hold) these numbers.
    num_shards = 2
    manifest = cell_manifest(specs)
    shard_partials = []
    for i in range(num_shards):
        partial = run_shard(manifest, i, num_shards, runner=runner)
        shard = partial["shard"]
        print(
            f"shard {i + 1}/{num_shards}:  {shard['wall_seconds']:6.2f}s "
            f"({len(partial['cells'])} cells, cost {shard['cost']}, "
            f"mode={shard['mode']})",
            file=sys.stderr,
        )
        shard_partials.append(partial)
    runner.close_pool()
    merged_matrix = SweepResults.from_partials(shard_partials).matrix()
    shards_identical = matrices_identical(serial_matrix, merged_matrix)
    shard_seconds = [
        p["shard"]["wall_seconds"] for p in shard_partials
    ]

    identical = matrices_identical(serial_matrix, parallel_matrix)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cell_seconds = sorted(t.seconds for t in parallel_timings)
    gate_applies = (
        runner.workers >= 2
        and cpu_count >= 2
        and parallel_mode == "parallel"
    )
    gate_ok = (not gate_applies) or speedup >= 1.0

    report = {
        "reference": {
            "scenarios": len(specs),
            "policies": 4,
            "seeds": list(args.seeds),
            "tasks_per_cell": args.tasks,
            "cells": len(cell_seconds),
        },
        "host": {
            "cpu_count": cpu_count,
            "start_method": start_method,
        },
        "serial": {"seconds": round(serial_s, 3)},
        "parallel": {
            "seconds": round(parallel_s, 3),
            "workers": runner.workers,
            "mode": parallel_mode,
            "warmed_workers": len(warm_pids),
            "warmup_timeouts": warmup_timeouts,
            "worker_pids_seen": parallel_pids,
            "cache": cell_cache,
            "cell_seconds_min": round(cell_seconds[0], 3),
            "cell_seconds_max": round(cell_seconds[-1], 3),
            "cell_seconds_mean": round(
                sum(cell_seconds) / len(cell_seconds), 3
            ),
        },
        "speedup": round(speedup, 3),
        "identical_metrics": identical,
        "shards": {
            "count": num_shards,
            "per_shard": [
                {
                    "index": i + 1,
                    "cells": len(p["cells"]),
                    "cost": p["shard"]["cost"],
                    "seconds": round(p["shard"]["wall_seconds"], 3),
                    "mode": p["shard"]["mode"],
                }
                for i, p in enumerate(shard_partials)
            ],
            "max_shard_seconds": round(max(shard_seconds), 3),
            "projected_2_host_speedup": round(
                serial_s / max(shard_seconds), 3
            ) if max(shard_seconds) > 0 else None,
            "merge_identical": shards_identical,
        },
        "engine": engine,
        "decisions": decisions,
        "robustness": {
            "supervised_seconds": round(supervised_s, 3),
            "mode": supervised_mode,
            "overhead_vs_parallel": round(supervision_overhead, 3),
            "identical_metrics": supervised_identical,
            "degraded": supervised_acc.degraded,
            "warmup_timeouts": warmup_timeouts,
            "note": (
                "fault-free supervised executor vs plain parallel; "
                "the overhead ratio is informational (not gated)"
            ),
        },
        "gate": {
            "applies": gate_applies,
            "passed": gate_ok,
            "note": (
                "parallel must not be slower than serial when the "
                "pool actually ran with >= 2 workers on a multi-CPU "
                "host"
            ),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(
        f"speedup x{speedup:.2f}, identical_metrics={identical} "
        f"-> {args.out}",
        file=sys.stderr,
    )

    if not identical:
        print("FAIL: parallel metrics differ from serial", file=sys.stderr)
        return 1
    if not shards_identical:
        print(
            "FAIL: sharded merge metrics differ from serial",
            file=sys.stderr,
        )
        return 1
    if not supervised_identical or supervised_acc.degraded:
        print(
            "FAIL: fault-free supervised run diverged from serial",
            file=sys.stderr,
        )
        return 1
    if not gate_ok:
        print(
            f"FAIL: parallel path slower than serial "
            f"(x{speedup:.2f}) with {runner.workers} workers on "
            f"{cpu_count} CPUs",
            file=sys.stderr,
        )
        return 1
    if not decisions["gate"]["passed"]:
        print(
            "FAIL: block-boundary cadence did not beat every-event "
            "on epoch-cache reuse",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
