"""Quick end-to-end smoke run of all four policies on one scenario,
plus a tiny 2-worker parallel matrix cross-checked against serial."""

import sys
import time

from repro.baselines import PlanariaPolicy, PremaPolicy, StaticPartitionPolicy
from repro.config import DEFAULT_SOC
from repro.core.policy import MoCAPolicy
from repro.experiments.parallel import ParallelRunner, matrices_identical
from repro.experiments.runner import ScenarioSpec, run_scenario
from repro.metrics import summarize
from repro.models.zoo import workload_set
from repro.sim.engine import run_simulation
from repro.sim.qos import QosLevel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


def main() -> None:
    set_name = sys.argv[1] if len(sys.argv) > 1 else "C"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    level = {"H": QosLevel.HARD, "M": QosLevel.MEDIUM, "L": QosLevel.LIGHT}[
        sys.argv[3] if len(sys.argv) > 3 else "M"
    ]
    soc = DEFAULT_SOC
    gen = WorkloadGenerator(soc, workload_set(set_name))
    tasks = gen.generate(WorkloadConfig(num_tasks=n, qos_level=level, seed=1))
    for pol in (PremaPolicy(), StaticPartitionPolicy(), PlanariaPolicy(),
                MoCAPolicy()):
        t0 = time.time()
        res = run_simulation(soc, tasks, pol)
        s = summarize(pol.name, res.results)
        print(
            f"{pol.name:10s} sla={s.sla_rate:5.2f} "
            f"grp={{{', '.join(f'{k}:{v:.2f}' for k, v in s.sla_by_group.items())}}} "
            f"stp/n={s.stp_normalized:5.2f} fair={s.fairness:7.4f} "
            f"slow={s.mean_slowdown:6.2f} t={time.time() - t0:5.2f}s"
        )

    # Tier-1-adjacent: a tiny 2-worker parallel matrix must reproduce
    # the serial path bit-for-bit.
    spec = ScenarioSpec(
        workload_set=set_name, qos_level=level,
        num_tasks=min(n, 24), seeds=(1,),
    )
    t0 = time.time()
    serial = run_scenario(spec)
    runner = ParallelRunner(workers=2)
    parallel = runner.run_scenario(spec)
    match = matrices_identical(
        {spec.label: serial}, {spec.label: parallel}
    )
    print(
        f"parallel(2) vs serial [{runner.last_mode}]: "
        f"{'OK' if match else 'MISMATCH'} t={time.time() - t0:5.2f}s"
    )
    if not match:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
