#!/usr/bin/env python
"""CI gate: in-process coordinator + 2 concurrent workers with a
mid-sweep worker death, byte-compared against the serial reference.

One "doomed" worker takes a lease over the in-process transport and
dies silently (no heartbeat, no submit).  Two live workers drain the
rest concurrently; the lease TTL runs out mid-sweep and the doomed
cells are stolen.  The merged accumulator must reproduce the serial
``run_matrix`` result exactly, and the JSON/CSV export bytes must be
identical — work-stealing may change *who* computes a cell, never the
bytes that come out.

Exit 0 on byte-identity, 1 with a diagnostic otherwise.
"""

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.execution import (  # noqa: E402
    Coordinator,
    InProcessTransport,
    SweepWorker,
)
from repro.experiments.results import cell_manifest  # noqa: E402
from repro.experiments.runner import run_matrix  # noqa: E402
from repro.reporting import sweep_to_csv, sweep_to_json  # noqa: E402
from repro.scenarios import get_scenario  # noqa: E402

SCENARIOS = ["bursty-mixed", "diurnal-light"]


def main() -> int:
    import dataclasses

    specs = [
        dataclasses.replace(
            get_scenario(name), num_tasks=16, seeds=(1, 2)
        )
        for name in SCENARIOS
    ]
    serial = run_matrix(specs)

    manifest = cell_manifest(specs)
    coordinator = Coordinator(manifest, lease_ttl=1.0)
    transport = InProcessTransport(coordinator)

    # The death: grab a lease, never heartbeat, never submit.  Its
    # cells must come back via TTL expiry and get stolen mid-sweep.
    doomed = transport.lease_request("doomed")
    if doomed is None:
        print("FAIL: doomed worker got no lease", file=sys.stderr)
        return 1

    workers = [
        SweepWorker(
            transport,
            worker_id=name,
            workers=1,
            poll_interval=0.1,
        )
        for name in ("gate-a", "gate-b")
    ]
    threads = [
        threading.Thread(target=w.run, name=w.worker_id)
        for w in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)

    status = coordinator.status()
    if not coordinator.acc.complete:
        print(
            f"FAIL: sweep did not complete: {status}", file=sys.stderr
        )
        return 1
    stolen = set(doomed["cell_indices"])
    credited = sum(
        record["cells_completed"]
        for name, record in status["workers"].items()
        if name != "doomed"
    )
    if credited != len(manifest["cells"]):
        print(
            f"FAIL: live workers credited {credited} cells, "
            f"expected {len(manifest['cells'])} (doomed lease "
            f"{sorted(stolen)} not fully stolen?)",
            file=sys.stderr,
        )
        return 1

    matrix = coordinator.acc.matrix()
    if matrix != serial:
        print(
            "FAIL: coordinator matrix differs from serial run_matrix",
            file=sys.stderr,
        )
        return 1
    for label, render in (("json", sweep_to_json), ("csv", sweep_to_csv)):
        if render(matrix) != render(serial):
            print(
                f"FAIL: {label} export bytes differ from serial",
                file=sys.stderr,
            )
            return 1
    print(
        f"coordinator gate OK: {len(manifest['cells'])} cells, "
        f"{len(stolen)} stolen from the dead worker, exports "
        f"byte-identical to serial"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
