#!/usr/bin/env bash
# CI entry point: tier-1 tests, the slow-marked suite, the smoke run,
# and a 2-worker mini-sweep of two registry scenarios (which must be
# bit-identical to serial — the sweep CLI itself asserts nothing, so
# the slow test suite covers the identity; this run proves the
# end-to-end path works from the shell).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 pytest =="
python -m pytest -x -q

echo "== slow suite =="
python -m pytest -x -q -m slow

echo "== smoke =="
python scripts/smoke.py A 24 M

echo "== mini-sweep (2 workers) =="
python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1 --workers 2

echo "CI OK"
