#!/usr/bin/env bash
# CI entry point: tier-1 tests, the slow-marked suite, the smoke run,
# and a 2-worker mini-sweep of two registry scenarios (which must be
# bit-identical to serial — the sweep CLI itself asserts nothing, so
# the slow test suite covers the identity; this run proves the
# end-to-end path works from the shell).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro-lint (determinism / lock coverage / purity) =="
# Project-specific static analysis (src/repro/devtools/lint): exits
# non-zero on any finding not suppressed inline with a reason or
# recorded (with a reason) in lint_baseline.json.
python scripts/lint_repro.py

echo "== ruff + mypy (advisory tier, gated on availability) =="
# Generic linters run when the environment has them; the image does
# not ship them, so absence is a skip, not a failure.  Config (and
# the ratchet knobs) lives in pyproject.toml.
if python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check src scripts
else
    echo "ruff not installed; skipping (pip install ruff to enable)"
fi
if python -m mypy --version >/dev/null 2>&1; then
    python -m mypy src/repro
else
    echo "mypy not installed; skipping (pip install mypy to enable)"
fi

echo "== tier-1 pytest =="
python -m pytest -x -q

echo "== slow suite =="
python -m pytest -x -q -m slow

echo "== engine microbench gate (plan seam vs imperative, bit-identity) =="
# ISSUE acceptance gate: the declarative plan seam must not run
# slower than the legacy imperative seam on the engine microbench
# (best-of-rounds ratio with one re-measure backstop, plus the
# recorded BENCH_perf.json
# imperative baseline as a cross-run backstop), and the vectorized
# solver must stay bit-identical to the scalar oracle across a
# reference-matrix spot check.  Both are asserted inside
# bench_perf.py --engine-only, which exits non-zero on violation.
python scripts/bench_perf.py --engine-only --tasks 120 --seeds 1

echo "== smoke =="
python scripts/smoke.py A 24 M

echo "== mini-sweep (2 workers) =="
python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1 --workers 2

echo "== streaming export identity (parallel vs serial, byte-exact) =="
# The streaming (2-worker) sweep and the serial sweep must write
# byte-identical JSON/CSV/manifest artifacts; any divergence in the
# streaming aggregation or the exporters fails the diff.
EXPORT_TMP="$(mktemp -d)"
trap 'rm -rf "$EXPORT_TMP"' EXIT
python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1,2 --workers 2 \
    --out "$EXPORT_TMP/streamed" --format json,csv
python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1,2 --workers 1 \
    --out "$EXPORT_TMP/serial" --format json,csv
diff -r "$EXPORT_TMP/streamed" "$EXPORT_TMP/serial"
echo "exports byte-identical"

echo "== sanitized run (REPRO_CHECK=1, byte-exact vs unchecked) =="
# The runtime invariant sanitizer (vector-vs-scalar solver spot
# checks, trusted-plan re-validation, ledger state-machine checks)
# must be a pure observer: the same sweep under REPRO_CHECK=1 must
# write byte-identical artifacts to the unchecked serial reference.
REPRO_CHECK=1 python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1,2 --workers 1 \
    --out "$EXPORT_TMP/sanitized" --format json,csv
diff -r "$EXPORT_TMP/sanitized" "$EXPORT_TMP/serial"
echo "sanitized run byte-identical"

echo "== every-event cadence identity (explicit vs default, byte-exact) =="
# ISSUE acceptance gate: the declarative plan seam under its default
# (every-event) cadence must stay bit-identical to the pinned
# sweep-export goldens.  The pytest golden suite pins the bytes
# themselves (tests/test_golden.py, tests/goldens/sweep_exports.json);
# this run additionally proves that spelling the default cadence out
# (--cadence every-event) writes the very same JSON/CSV/manifest
# bytes as the default path end to end from the shell.
python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1,2 --workers 1 \
    --cadence every-event \
    --out "$EXPORT_TMP/everyevent" --format json,csv
diff -r "$EXPORT_TMP/everyevent" "$EXPORT_TMP/serial"
echo "every-event cadence byte-identical"

echo "== shard/merge identity (2 shards -> merge vs unsharded, byte-exact) =="
# ISSUE acceptance gate: running the same sweep as two shard partials
# and merging them must write byte-identical JSON/CSV/manifest
# artifacts to the unsharded serial run above.  Shard 1 additionally
# runs with a deterministic first-attempt worker crash injected: the
# supervisor must retry the cell on a rebuilt pool and the merged
# exports must *still* be byte-identical (retry determinism).
python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1,2 --workers 2 \
    --inject-faults 'crash:cells=3:attempts=1' \
    --max-retries 2 --retry-backoff 0.05 \
    --shard 1/2 --out "$EXPORT_TMP/shards"
python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1,2 --workers 2 \
    --shard 2/2 --out "$EXPORT_TMP/shards"
python -m repro.cli merge "$EXPORT_TMP/shards" \
    --out "$EXPORT_TMP/merged" --format json,csv
diff -r "$EXPORT_TMP/merged" "$EXPORT_TMP/serial"
echo "sharded merge byte-identical"

echo "== fault tolerance (poison crash -> exit 3 -> resume, byte-exact) =="
# ISSUE acceptance gate: a sweep with an injected unrecoverable worker
# crash must quarantine the poisoned cells and exit 3 (degraded)
# leaving a checkpoint journal; 'sweep --resume' without the fault
# plan must finish the sweep with exit 0 and write exports
# byte-identical to the fault-free serial reference above.
rc=0
python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1,2 --workers 2 \
    --inject-faults 'crash:cells=2:attempts=all' \
    --max-retries 1 --retry-backoff 0.05 \
    --out "$EXPORT_TMP/faulted" --format json,csv || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL: degraded sweep exited $rc, expected 3" >&2
    exit 1
fi
if [ ! -f "$EXPORT_TMP/faulted/cells.jsonl" ]; then
    echo "FAIL: degraded sweep left no checkpoint journal" >&2
    exit 1
fi
python -m repro.cli sweep --resume "$EXPORT_TMP/faulted" \
    --workers 2 --format json,csv
if [ -f "$EXPORT_TMP/faulted/cells.jsonl" ]; then
    echo "FAIL: completed resume did not remove the journal" >&2
    exit 1
fi
diff -r "$EXPORT_TMP/faulted" "$EXPORT_TMP/serial"
echo "crash -> resume byte-identical"

echo "== coordinator gate (in-process lease stealing, byte-exact) =="
# ISSUE acceptance gate: an in-process coordinator with two live
# workers and one dead one (lease taken, never heard from again) must
# steal the expired lease mid-sweep and still produce exports
# byte-identical to the serial matrix.  Asserted inside the script.
python scripts/coordinator_gate.py

echo "== distributed sweep (coordinator + 2 HTTP workers, one killed) =="
# ISSUE acceptance gate: 'sweep --serve' plus two real 'sweep --worker'
# processes over HTTP; the first worker is killed mid-run by an
# injected crash fault (the whole process dies with exit 86), the
# second steals the expired lease and drains the sweep.  The merged
# exports must be byte-identical to the unsharded serial reference.
python -m repro.cli sweep \
    --scenarios bursty-mixed,diurnal-light \
    --tasks 16 --seeds 1,2 \
    --serve --lease-ttl 2 \
    --out "$EXPORT_TMP/coord" --format json,csv &
SERVE_PID=$!
URL=""
for _ in $(seq 1 100); do
    if [ -f "$EXPORT_TMP/coord/coordinator.json" ]; then
        URL=$(python -c "import json,sys;print(json.load(open(sys.argv[1]))['url'])" \
            "$EXPORT_TMP/coord/coordinator.json" 2>/dev/null || true)
        [ -n "$URL" ] && break
    fi
    sleep 0.1
done
if [ -z "$URL" ]; then
    echo "FAIL: coordinator never published coordinator.json" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
rc=0
python -m repro.cli sweep --worker "$URL" \
    --inject-faults 'crash:cells=5' || rc=$?
if [ "$rc" -ne 86 ]; then
    echo "FAIL: crashing worker exited $rc, expected 86" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
python -m repro.cli sweep --worker "$URL"
if ! wait "$SERVE_PID"; then
    echo "FAIL: coordinator exited non-zero" >&2
    exit 1
fi
diff -r "$EXPORT_TMP/coord" "$EXPORT_TMP/serial"
echo "distributed sweep byte-identical"

echo "CI OK"
