#!/usr/bin/env python
"""repro-lint CLI: the project's static-analysis gate.

Runs the three rule families of :mod:`repro.devtools.lint` —
D (determinism), R (lock coverage), P (value-object purity) — over
``src/`` and ``scripts/`` and reports anything not suppressed inline
or recorded (with a reason) in the checked-in baseline.

Exit codes: 0 clean, 1 findings, 2 usage/config error.

Examples::

    python scripts/lint_repro.py                 # the CI gate
    python scripts/lint_repro.py src/repro/cli.py --format json
    python scripts/lint_repro.py --select R201,R202,R203
    python scripts/lint_repro.py --write-baseline  # accept current findings
    python scripts/lint_repro.py --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.devtools.lint import (  # noqa: E402 (path bootstrap above)
    RULES,
    LintConfig,
    baseline_entries,
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)

DEFAULT_BASELINE = REPO_ROOT / "lint_baseline.json"
DEFAULT_PATHS = ("src", "scripts")

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files/directories to lint (default: {DEFAULT_PATHS})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE.name} at "
             f"the repo root, when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report everything)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into the baseline file "
             "(existing reasons are preserved; new entries get a "
             "TODO reason you must edit)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return EXIT_OK

    config = LintConfig()
    if args.select:
        selected = frozenset(
            r.strip() for r in args.select.split(",") if r.strip()
        )
        unknown = sorted(selected - set(RULES))
        if unknown:
            print(
                f"lint_repro: unknown rule(s) {unknown}; see "
                f"--list-rules", file=sys.stderr,
            )
            return EXIT_USAGE
        config.select = selected

    paths = args.paths or [REPO_ROOT / p for p in DEFAULT_PATHS]
    for p in paths:
        if not Path(p).exists():
            print(f"lint_repro: no such path {p}", file=sys.stderr)
            return EXIT_USAGE

    baseline_path = Path(args.baseline) if args.baseline else (
        DEFAULT_BASELINE
    )
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.is_file():
            try:
                baseline = load_baseline(baseline_path)
            except ValueError as exc:
                print(f"lint_repro: {exc}", file=sys.stderr)
                return EXIT_USAGE
        elif args.baseline:
            print(
                f"lint_repro: baseline {baseline_path} not found",
                file=sys.stderr,
            )
            return EXIT_USAGE

    report = lint_paths(paths, REPO_ROOT, config, baseline)

    if args.write_baseline:
        existing = {}
        if baseline_path.is_file():
            try:
                for entry in load_baseline(baseline_path):
                    key = (
                        entry["rule"], entry["path"], entry["snippet"]
                    )
                    existing[key] = entry["reason"]
            except ValueError:
                pass  # rewriting a broken baseline from scratch
        entries = baseline_entries(report.findings)
        for entry in entries:
            key = (entry["rule"], entry["path"], entry["snippet"])
            if key in existing:
                entry["reason"] = existing[key]
        save_baseline(baseline_path, entries)
        print(
            f"lint_repro: wrote {len(entries)} entr"
            f"{'y' if len(entries) == 1 else 'ies'} to "
            f"{baseline_path}"
        )
        todo = [
            e for e in entries if e["reason"].startswith("TODO")
        ]
        if todo:
            print(
                f"lint_repro: {len(todo)} entr"
                f"{'y needs' if len(todo) == 1 else 'ies need'} a "
                f"real reason before the baseline will load",
            )
        return EXIT_OK

    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return EXIT_OK if report.clean else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
