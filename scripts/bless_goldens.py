"""Re-bless the golden reference-matrix fingerprints.

Run after an *intentional* change to simulator outputs::

    PYTHONPATH=src python scripts/bless_goldens.py

Rewrites ``tests/goldens/reference_matrix.json``; review the diff and
commit it with the change that moved the metrics.
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.golden import (  # noqa: E402
    GOLDEN_NUM_TASKS,
    GOLDEN_SEEDS,
    compute_reference_fingerprints,
)

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests" / "goldens" / "reference_matrix.json"
)


def main() -> None:
    t0 = time.time()
    cells = compute_reference_fingerprints()
    payload = {
        "num_tasks": GOLDEN_NUM_TASKS,
        "seeds": list(GOLDEN_SEEDS),
        "cells": cells,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"blessed {len(cells)} cells -> {GOLDEN_PATH} "
        f"({time.time() - t0:.1f}s)"
    )


if __name__ == "__main__":
    main()
