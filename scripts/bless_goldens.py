"""Re-bless the golden fingerprints.

Run after an *intentional* change to simulator outputs or to the
sweep exporters::

    PYTHONPATH=src python scripts/bless_goldens.py

Rewrites ``tests/goldens/reference_matrix.json`` (metric fingerprints
of the 36 reference cells) and ``tests/goldens/sweep_exports.json``
(byte digests of the sweep JSON/CSV export files); review the diff and
commit it with the change that moved the outputs.
"""

import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.golden import (  # noqa: E402
    GOLDEN_NUM_TASKS,
    GOLDEN_SEEDS,
    compute_reference_fingerprints,
)

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests" / "goldens" / "reference_matrix.json"
)


def main() -> None:
    t0 = time.time()
    cells = compute_reference_fingerprints()
    payload = {
        "num_tasks": GOLDEN_NUM_TASKS,
        "seeds": list(GOLDEN_SEEDS),
        "cells": cells,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"blessed {len(cells)} cells -> {GOLDEN_PATH} "
        f"({time.time() - t0:.1f}s)"
    )
    bless_sweep_exports()


def bless_sweep_exports() -> None:
    """Pin byte digests of the sweep export files (see
    tests/test_reporting.py::TestSweepExports)."""
    from repro.experiments.runner import run_matrix  # noqa: E402
    from repro.reporting import sweep_to_csv, sweep_to_json  # noqa: E402

    # Import the spec list from the test module so the bless script
    # and the test can never drift apart.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
    from test_reporting import (  # noqa: E402
        GOLDEN_EXPORT_PATH,
        GOLDEN_EXPORT_SPECS,
    )

    t0 = time.time()
    matrix = run_matrix(GOLDEN_EXPORT_SPECS)
    payload = {
        "specs": [spec.to_dict() for spec in GOLDEN_EXPORT_SPECS],
        "digests": {
            "json": hashlib.sha256(
                sweep_to_json(matrix).encode()
            ).hexdigest()[:16],
            "csv": hashlib.sha256(
                sweep_to_csv(matrix).encode()
            ).hexdigest()[:16],
        },
    }
    GOLDEN_EXPORT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"blessed sweep export digests -> {GOLDEN_EXPORT_PATH} "
        f"({time.time() - t0:.1f}s)"
    )


if __name__ == "__main__":
    main()
