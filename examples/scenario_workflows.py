"""Durable scenarios and result export.

Shows the reproducibility workflow around the simulator: generate a
workload, persist it to JSON, reload it bit-exact, run two systems on
the *same* queries, then export per-task records to CSV and render an
ASCII comparison chart — the reproduction's equivalent of the paper
artifact's result-parsing scripts.

Run:  python examples/scenario_workflows.py [outdir]
"""

import pathlib
import sys

from repro.baselines.static_partition import StaticPartitionPolicy
from repro.config import DEFAULT_SOC
from repro.core.policy import MoCAPolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.metrics import summarize
from repro.models.zoo import workload_set
from repro.reporting import ascii_bar_chart, results_to_csv
from repro.sim.engine import run_simulation
from repro.sim.qos import QosLevel, QosModel
from repro.sim.tracefile import dump_tasks, load_tasks
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


def main() -> None:
    outdir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "/tmp/moca_demo")
    outdir.mkdir(parents=True, exist_ok=True)

    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    generator = WorkloadGenerator(soc, workload_set("C"), mem,
                                  QosModel(soc, slack_factor=2.0))
    tasks = generator.generate(WorkloadConfig(
        num_tasks=80, qos_level=QosLevel.HARD, load_factor=0.7, seed=42,
    ))

    scenario_path = outdir / "scenario.json"
    scenario_path.write_text(dump_tasks(tasks))
    print(f"saved scenario -> {scenario_path} ({len(tasks)} tasks)")

    reloaded = load_tasks(scenario_path.read_text(), soc, mem)
    print(f"reloaded {len(reloaded)} tasks (bit-exact workload fields)\n")

    sla = {}
    for policy in (StaticPartitionPolicy(), MoCAPolicy()):
        result = run_simulation(soc, reloaded, policy, mem=mem)
        summary = summarize(policy.name, result.results)
        sla[policy.name] = summary.sla_rate
        csv_path = outdir / f"results_{policy.name}.csv"
        csv_path.write_text(results_to_csv(result.results))
        print(f"{policy.name}: SLA {summary.sla_rate:.2f}, "
              f"STP/n {summary.stp_normalized:.2f} -> {csv_path}")

    print()
    print(ascii_bar_chart(sla, title="SLA satisfaction (Workload-C, QoS-H)",
                          max_value=1.0))


if __name__ == "__main__":
    main()
