"""Quickstart: estimate and simulate a DNN on the MoCA SoC.

Walks the core public API end to end:

1. build a benchmark network from the zoo;
2. run Algorithm 1's latency estimator at different tile allocations;
3. simulate the network running alone on the SoC and compare.

Run:  python examples/quickstart.py [model]
"""

import sys

from repro.config import DEFAULT_SOC
from repro.core.latency import build_network_cost, estimate_network
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model, model_names
from repro.sim.engine import run_simulation
from repro.sim.job import Task
from repro.sim.plan import EMPTY_PLAN, AllocationPlan
from repro.sim.policy import Policy


class RunAlonePolicy(Policy):
    """Simplest possible policy: give the one job every tile.

    Policies are declarative — ``decide`` returns an
    :class:`~repro.sim.plan.AllocationPlan` naming what should change
    (here: admit the head of the queue onto the whole SoC) and the
    engine's controller applies it.
    """

    name = "run-alone"

    def decide(self, sim):
        if sim.ready and not sim.running:
            return AllocationPlan(
                admissions=((sim.ready[0].job_id, sim.soc.num_tiles),)
            )
        return EMPTY_PLAN

    def reset(self):
        pass


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    if name not in model_names():
        raise SystemExit(f"unknown model {name!r}; try one of {model_names()}")

    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    network = build_model(name)

    print(f"== {network.name} ({network.domain}) ==")
    print(f"layers:  {len(network)}")
    print(f"MACs:    {network.total_macs / 1e9:.3f} G")
    print(f"params:  {network.total_weight_bytes / 1e6:.2f} MB")
    print(f"traffic: {network.total_mem_bytes / 1e6:.2f} MB to the L2")
    print()

    print("Algorithm 1 latency estimates (no contention):")
    for tiles in (1, 2, 4, 8):
        total, _ = estimate_network(network, soc, mem, num_tiles=tiles)
        print(f"  {tiles} tile(s): {total / 1e6:8.3f} M cycles "
              f"= {soc.cycles_to_ms(total):7.3f} ms")
    print()

    cost = build_network_cost(network, soc, mem)
    isolated = cost.total_prediction(
        soc.num_tiles, mem.dram_bandwidth, mem.l2_bandwidth, soc.overlap_f
    )
    task = Task(
        task_id="demo",
        network_name=network.name,
        cost=cost,
        dispatch_cycle=0.0,
        priority=5,
        qos_target_cycles=3.0 * isolated,
        isolated_cycles=isolated,
    )
    result = run_simulation(soc, [task], RunAlonePolicy(), mem=mem)
    r = result.results[0]
    print(f"simulated alone on {soc.num_tiles} tiles: "
          f"{r.runtime / 1e6:.3f} M cycles "
          f"({soc.cycles_to_ms(r.runtime):.3f} ms), "
          f"met SLA: {r.met_sla}")
    print(f"estimator vs simulator: "
          f"{abs(r.runtime - isolated) / isolated * 100:.2f}% apart")


if __name__ == "__main__":
    main()
