"""The MoCA hardware engine up close (Section III-B).

Drives the cycle-level access-counter / thresholding FSM directly —
the same window/threshold contract the runtime configures — and shows
how bubbles shape a request stream, plus the Table IV area cost of the
engine.

Run:  python examples/throttling_hardware.py
"""

from repro.accelerator.area import AreaModel
from repro.accelerator.dma import MEM_REQUEST_BYTES
from repro.accelerator.moca_hw import MoCAHardwareEngine


def run_stream(hw: MoCAHardwareEngine, cycles: int, burst: int = 1):
    """Try to issue ``burst`` requests every cycle; return a timeline."""
    timeline = []
    issued = 0
    for _ in range(cycles):
        ok = hw.try_issue(burst)
        if ok:
            issued += burst
        timeline.append("I" if ok else ".")
        hw.step()
    return "".join(timeline), issued


def main() -> None:
    print("Unthrottled DMA (threshold disabled):")
    hw = MoCAHardwareEngine()
    timeline, issued = run_stream(hw, 40)
    print(f"  {timeline}  -> {issued} requests in 40 cycles\n")

    print("Throttled to 8 requests per 32-cycle window "
          "(2 B/cycle of 64 B requests):")
    hw = MoCAHardwareEngine()
    hw.configure(window=32, threshold_load=8)
    timeline, issued = run_stream(hw, 96)
    rate = issued / 96
    print(f"  {timeline}")
    print(f"  -> {issued} requests in 96 cycles "
          f"({rate:.3f} req/cycle ~ allowed {hw.allowed_rate():.3f}; "
          f"{rate * MEM_REQUEST_BYTES:.1f} B/cycle)")
    print(f"  -> {hw.total_bubbles} bubble cycles inserted\n")

    print("Runtime reconfiguration mid-stream (new budget, stall lifts):")
    hw = MoCAHardwareEngine()
    hw.configure(window=16, threshold_load=2)
    first, _ = run_stream(hw, 16)
    hw.configure(window=16, threshold_load=12)
    second, _ = run_stream(hw, 16)
    print(f"  tight budget: {first}")
    print(f"  after reconfig: {second}\n")

    area = AreaModel()
    print("What this engine costs in silicon (Table IV, GF 12nm):")
    print(f"  MoCA hardware: {area.component_map['moca_hardware']:.0f} um^2 "
          f"= {100 * area.moca_overhead_of_tile:.3f}% of the tile")


if __name__ == "__main__":
    main()
