"""Co-location interference demo (the paper's Figure 1 motivation).

Runs SqueezeNet alone, then co-located with progressively more memory-
hungry neighbours on static 2-tile slots with unmanaged memory, showing
how shared-L2 / DRAM contention stretches its latency — the problem
MoCA exists to solve.

Run:  python examples/colocation_interference.py
"""

from repro.baselines.static_partition import StaticPartitionPolicy
from repro.config import DEFAULT_SOC
from repro.core.latency import build_network_cost
from repro.experiments.fig1_motivation import format_fig1, run_fig1
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model
from repro.sim.engine import run_simulation
from repro.sim.job import Task


def _task(task_id, name, dispatch, soc, mem, sharers):
    cost = build_network_cost(build_model(name), soc, mem,
                              num_sharers=sharers)
    iso = cost.total_prediction(2, mem.dram_bandwidth, mem.l2_bandwidth,
                                soc.overlap_f)
    return Task(task_id=task_id, network_name=name, cost=cost,
                dispatch_cycle=dispatch, priority=5,
                qos_target_cycles=1e18, isolated_cycles=iso)


def main() -> None:
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)

    print("Step-by-step: SqueezeNet vs increasingly hungry co-runners")
    print(f"{'co-runners':<40s}{'runtime (ms)':>14s}{'slowdown':>10s}")
    neighbours = [[], ["kws"], ["kws", "googlenet"],
                  ["kws", "googlenet", "alexnet"]]
    baseline = None
    for co in neighbours:
        sharers = 1 + len(co)
        tasks = [_task("subject", "squeezenet", 0.0, soc, mem, sharers)]
        for i, name in enumerate(co):
            tasks.append(_task(f"co{i}", name, 0.0, soc, mem, sharers))
        result = run_simulation(
            soc, tasks, StaticPartitionPolicy(tiles_per_slot=2), mem=mem
        )
        runtime = result.result_for("subject").runtime
        if baseline is None:
            baseline = runtime
        label = "+".join(co) if co else "(none: isolated)"
        print(f"{label:<40s}{soc.cycles_to_ms(runtime):>14.3f}"
              f"{runtime / baseline:>10.2f}x")

    print()
    print("Full randomized study (paper Figure 1, 300 trials):")
    print(format_fig1(run_fig1(trials=300, seed=0)))


if __name__ == "__main__":
    main()
