"""Multi-tenant QoS scheduling: MoCA vs the paper's three baselines.

Generates a mixed (Workload-C) scenario of prioritized inference
queries with QoS-H targets, runs all four systems on identical task
streams, and prints the Section IV-C metrics side by side — a compact
version of the paper's Figures 5-8.

Run:  python examples/qos_scheduling.py [num_tasks] [seed]
"""

import sys

from repro.baselines import PlanariaPolicy, PremaPolicy, StaticPartitionPolicy
from repro.config import DEFAULT_SOC
from repro.core.policy import MoCAPolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.metrics import summarize
from repro.models.zoo import workload_set
from repro.sim.engine import run_simulation
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


def main() -> None:
    num_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    generator = WorkloadGenerator(
        soc, workload_set("C"), mem, QosModel(soc, slack_factor=2.0)
    )
    tasks = generator.generate(WorkloadConfig(
        num_tasks=num_tasks, qos_level=QosLevel.HARD, load_factor=0.7,
        seed=seed,
    ))
    print(f"{num_tasks} queries over Workload-C at QoS-H "
          f"(seed {seed}), priorities 0-11\n")

    header = (f"{'system':<10s}{'SLA':>7s}{'p-Low':>8s}{'p-Mid':>8s}"
              f"{'p-High':>8s}{'STP/n':>8s}{'fairness':>10s}"
              f"{'reparts':>9s}{'reconfigs':>10s}")
    print(header)
    for factory in (PremaPolicy, StaticPartitionPolicy, PlanariaPolicy,
                    MoCAPolicy):
        policy = factory()
        result = run_simulation(soc, tasks, policy, mem=mem)
        s = summarize(policy.name, result.results)
        reparts = sum(r.tile_repartitions for r in result.results)
        reconfigs = sum(r.bw_reconfigs for r in result.results)
        groups = s.sla_by_group
        print(
            f"{policy.name:<10s}{s.sla_rate:>7.2f}"
            f"{groups.get('p-Low', float('nan')):>8.2f}"
            f"{groups.get('p-Mid', float('nan')):>8.2f}"
            f"{groups.get('p-High', float('nan')):>8.2f}"
            f"{s.stp_normalized:>8.2f}{s.fairness:>10.4f}"
            f"{reparts:>9d}{reconfigs:>10d}"
        )

    print(
        "\nNote how MoCA reconfigures the *memory* path frequently "
        "(cheap, 8 cycles) while compute repartitions stay rare, "
        "whereas Planaria pays ~1M cycles per tile repartition."
    )


if __name__ == "__main__":
    main()
