"""Benchmark regenerating Figure 6: SLA satisfaction by priority group.

Paper shapes to hold: satisfaction rises with priority for MoCA; MoCA's
p-High rate dominates every baseline's p-High rate in aggregate; MoCA
is the only system without catastrophic p-High failures.
"""

import pytest

from repro.experiments.fig6_priority import format_fig6, group_rates
from repro.experiments.runner import ScenarioSpec, run_scenario
from repro.sim.qos import QosLevel


def test_fig6_priority_breakdown(benchmark, paper_matrix):
    spec = ScenarioSpec(workload_set="C", qos_level=QosLevel.MEDIUM,
                        num_tasks=60, seeds=(1,))
    benchmark.pedantic(run_scenario, args=(spec,), rounds=1, iterations=1)

    print()
    print(format_fig6(paper_matrix))
    rates = group_rates(paper_matrix)

    # Shape: aggregated over scenarios, MoCA p-High satisfaction beats
    # every baseline's p-High satisfaction.
    def mean_group(policy, group):
        vals = [
            rates[label][policy][group]
            for label in rates
            if group in rates[label][policy]
        ]
        return sum(vals) / len(vals)

    moca_high = mean_group("moca", "p-High")
    for baseline in ("prema", "static", "planaria"):
        assert moca_high >= mean_group(baseline, "p-High") - 0.02, baseline

    # Shape: MoCA favours high priority over low priority.
    assert moca_high >= mean_group("moca", "p-Low")

    # Shape: MoCA p-High satisfaction is strong in absolute terms.
    assert moca_high > 0.7
