"""Ablation: instruction-level pipeline vs Algorithm 1.

Executes every layer of every benchmark network on the decoupled
access/execute pipeline (Gemmini-style mvin/compute/mvout streams with
double buffering) and compares network totals against Algorithm 1's
closed form — the instruction-level analogue of the paper's FireSim
validation.  Also quantifies what throttling costs a memory-bound
network vs a compute-bound one, the asymmetry MoCA's design exploits.
"""

import pytest

from repro.accelerator.moca_hw import MoCAHardwareEngine
from repro.accelerator.pipeline import simulate_layer
from repro.config import DEFAULT_SOC
from repro.core.latency import estimate_layer
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model, model_names

SOC = DEFAULT_SOC
MEM = MemoryHierarchy.from_soc(SOC)


def _network_totals():
    rows = {}
    for name in model_names():
        net = build_model(name)
        pipe = sum(
            simulate_layer(l, SOC,
                           dram_share_bytes_per_cycle=MEM.dram_bandwidth
                           ).makespan
            for l in net.layers
        )
        analytic = sum(
            estimate_layer(l, SOC, MEM, num_tiles=1).prediction
            for l in net.layers
        )
        rows[name] = (pipe, analytic, pipe / analytic)
    return rows


def test_isa_pipeline_crosscheck(benchmark):
    rows = benchmark.pedantic(_network_totals, rounds=1, iterations=1)

    print()
    print("Instruction-level pipeline vs Algorithm 1 (1 tile):")
    print(f"{'network':<12s}{'pipeline Mcyc':>15s}{'analytic Mcyc':>15s}"
          f"{'ratio':>8s}")
    for name, (pipe, analytic, ratio) in rows.items():
        print(f"{name:<12s}{pipe / 1e6:>15.3f}{analytic / 1e6:>15.3f}"
              f"{ratio:>8.3f}")

    # Shape: the two abstractions agree within ~35 % on every network.
    for name, (_, _, ratio) in rows.items():
        assert 0.65 < ratio < 1.35, name

    # Shape: throttling hurts a memory-bound network (AlexNet) far more
    # than a compute-bound one (KWS) — the asymmetry behind MoCA's
    # memory-centric design.
    def throttled_slowdown(model_name, bytes_per_cycle=4.0):
        net = build_model(model_name)
        free = throttled = 0.0
        for layer in net.layers:
            free += simulate_layer(layer, SOC).makespan
            engine = MoCAHardwareEngine()
            engine.configure(window=1000,
                             threshold_load=int(bytes_per_cycle / 64 * 1000))
            throttled += simulate_layer(layer, SOC, engine=engine).makespan
        return throttled / free

    alexnet_slowdown = throttled_slowdown("alexnet")
    kws_slowdown = throttled_slowdown("kws")
    print(f"4 B/cycle throttle slowdown: alexnet {alexnet_slowdown:.2f}x, "
          f"kws {kws_slowdown:.2f}x")
    assert alexnet_slowdown > kws_slowdown
    assert alexnet_slowdown > 1.5
    assert kws_slowdown < 1.5
