"""Ablation: the overlap_f tuning utility (Section III-C).

Runs the paper's tuning flow end to end: probe layers are "measured"
on the fluid simulator configured at a hidden overlap_f, then the
utility sweeps candidates and must recover the hidden value.  Also
reports how sensitive whole-network predictions are to a mistuned f.
"""

import pytest

from repro.config import DEFAULT_SOC
from repro.core.latency import build_network_cost, estimate_layer
from repro.core.tuning import tune_overlap_f
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model

HIDDEN_F = 0.30


def _probe_layers():
    nets = ("resnet50", "alexnet", "googlenet", "squeezenet")
    layers = []
    for name in nets:
        net = build_model(name)
        layers.extend([net.layers[0], net.layers[len(net) // 2]])
    return layers


def _tune():
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    hidden = soc.with_overlap(HIDDEN_F)

    def measure(layer):
        return estimate_layer(layer, hidden, mem, num_tiles=2).prediction

    return tune_overlap_f(
        _probe_layers(), measure, soc, mem, num_tiles=2
    )


def test_overlap_tuning_ablation(benchmark):
    result = benchmark.pedantic(_tune, rounds=1, iterations=1)

    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    print()
    print(f"overlap_f tuning: hidden={HIDDEN_F}, "
          f"recovered={result.best_overlap_f} "
          f"(error {result.best_error * 100:.2f}%)")
    print("sensitivity of end-to-end predictions to mistuned f:")
    for name in ("alexnet", "resnet50"):
        cost = build_network_cost(build_model(name), soc, mem)
        t_lo = cost.total_prediction(2, mem.dram_bandwidth,
                                     mem.l2_bandwidth, 0.0)
        t_hi = cost.total_prediction(2, mem.dram_bandwidth,
                                     mem.l2_bandwidth, 1.0)
        print(f"  {name:10s}: f=0 -> {t_lo / 1e6:.2f}M cycles, "
              f"f=1 -> {t_hi / 1e6:.2f}M cycles "
              f"({t_hi / t_lo:.2f}x spread)")
        assert t_hi > t_lo

    # Shape: the utility recovers the hidden overlap factor.
    assert result.best_overlap_f == pytest.approx(HIDDEN_F, abs=0.051)
    assert result.best_error < 0.01
