"""Benchmark regenerating Figure 7: STP normalized to Planaria.

Paper shapes to hold: MoCA above 1.0 (better than Planaria) in every
scenario; Prema's temporal multiplexing yields by far the lowest STP;
MoCA beats the static partition everywhere.
"""

import pytest

from repro.experiments.fig7_stp import (
    format_fig7,
    stp_normalized_to_planaria,
)
from repro.experiments.runner import (
    ScenarioSpec,
    geomean_improvement,
    run_scenario,
)
from repro.sim.qos import QosLevel


def test_fig7_stp(benchmark, paper_matrix):
    spec = ScenarioSpec(workload_set="B", qos_level=QosLevel.MEDIUM,
                        num_tasks=60, seeds=(1,))
    benchmark.pedantic(run_scenario, args=(spec,), rounds=1, iterations=1)

    print()
    print(format_fig7(paper_matrix))
    norm = stp_normalized_to_planaria(paper_matrix)

    # Shape: MoCA >= Planaria everywhere.
    for label, row in norm.items():
        assert row["moca"] >= 0.98, label

    # Shape: Prema clearly the lowest.
    for label, row in norm.items():
        assert row["prema"] <= row["moca"], label

    # Shape: geomean improvements in the paper's direction.
    assert geomean_improvement(paper_matrix, "stp", "prema") > 1.5
    assert geomean_improvement(paper_matrix, "stp", "static") > 1.0
    assert geomean_improvement(paper_matrix, "stp", "planaria") > 1.0
