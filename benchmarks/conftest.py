"""Shared fixtures for the benchmark harness.

The Figure 5-8 benches reuse a single matrix run (they are different
views of the same simulations, exactly as in the paper), computed once
per session at a reduced-but-representative size.  Set
``REPRO_BENCH_TASKS`` / ``REPRO_BENCH_SEEDS`` to scale up to the
paper's full 250-task, multi-seed configuration.

The matrix is computed through the parallel experiment executor
(:mod:`repro.experiments.parallel`), one worker per CPU by default;
``REPRO_BENCH_WORKERS=1`` forces the serial path (both paths produce
identical metrics).
"""

import os

import pytest

from repro.experiments.runner import run_matrix, standard_matrix

BENCH_TASKS = int(os.environ.get("REPRO_BENCH_TASKS", "120"))
BENCH_SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SEEDS", "1,2").split(",")
)
BENCH_WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", str(os.cpu_count() or 1))
)


@pytest.fixture(scope="session")
def paper_matrix():
    """The nine-scenario evaluation matrix shared by Figures 5-8."""
    specs = standard_matrix(num_tasks=BENCH_TASKS, seeds=BENCH_SEEDS)
    return run_matrix(specs, workers=BENCH_WORKERS)
