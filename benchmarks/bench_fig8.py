"""Benchmark regenerating Figure 8: fairness normalized to Planaria.

Paper shapes to hold: MoCA improves fairness over Prema and Planaria in
aggregate, with the benefit most pronounced for Workload-B (memory-
intensive layers starving co-runners without regulation).
"""

import pytest

from repro.experiments.fig8_fairness import (
    fairness_normalized_to_planaria,
    format_fig8,
)
from repro.experiments.runner import (
    ScenarioSpec,
    geomean_improvement,
    run_scenario,
)
from repro.models.layers import geomean
from repro.sim.qos import QosLevel


def test_fig8_fairness(benchmark, paper_matrix):
    spec = ScenarioSpec(workload_set="B", qos_level=QosLevel.LIGHT,
                        num_tasks=60, seeds=(1,))
    benchmark.pedantic(run_scenario, args=(spec,), rounds=1, iterations=1)

    print()
    print(format_fig8(paper_matrix))
    norm = fairness_normalized_to_planaria(paper_matrix)

    # Shape: MoCA improves fairness over Planaria in geomean.
    assert geomean_improvement(paper_matrix, "fairness", "planaria") > 1.0

    # Shape: MoCA improves fairness over Prema in geomean.
    assert geomean_improvement(paper_matrix, "fairness", "prema") > 1.0

    # Shape: the fairness benefit over Planaria shows on Workload-B
    # (memory-bound layers starve co-runners without regulation).
    b_ratios = [
        norm[label]["moca"]
        for label in norm
        if label.startswith("Workload-B")
    ]
    assert geomean(b_ratios) > 1.0
