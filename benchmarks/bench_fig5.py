"""Benchmark regenerating Figure 5: SLA satisfaction rates.

Paper shapes to hold: MoCA is best in every scenario; Prema is worst
overall; Planaria degrades below static at QoS-H on light models;
MoCA's margin is most pronounced at QoS-H.
"""

import pytest

from repro.experiments.fig5_sla import format_fig5
from repro.experiments.runner import (
    ScenarioSpec,
    geomean_improvement,
    run_scenario,
)
from repro.sim.qos import QosLevel


def test_fig5_sla(benchmark, paper_matrix):
    # The timed body is one representative scenario; the printed table
    # covers the full shared matrix.
    spec = ScenarioSpec(workload_set="A", qos_level=QosLevel.HARD,
                        num_tasks=60, seeds=(1,))
    benchmark.pedantic(run_scenario, args=(spec,), rounds=1, iterations=1)

    print()
    print(format_fig5(paper_matrix))

    # Shape: MoCA wins every scenario.
    for label, cell in paper_matrix.items():
        for baseline in ("prema", "static", "planaria"):
            assert cell["moca"].sla_rate >= cell[baseline].sla_rate - 0.02, (
                label, baseline
            )

    # Shape: geomean improvements are in the paper's direction.
    assert geomean_improvement(paper_matrix, "sla_rate", "prema") > 1.5
    assert geomean_improvement(paper_matrix, "sla_rate", "static") > 1.0
    assert geomean_improvement(paper_matrix, "sla_rate", "planaria") > 1.0

    # Shape: Planaria below static for light models at QoS-H
    # (migration overhead vs short runtimes).
    cell = paper_matrix["Workload-A/QoS-H"]
    assert cell["planaria"].sla_rate < cell["static"].sla_rate

    # Shape: Prema is the weakest system overall.
    prema_mean = sum(c["prema"].sla_rate for c in paper_matrix.values())
    static_mean = sum(c["static"].sla_rate for c in paper_matrix.values())
    assert prema_mean < static_mean
