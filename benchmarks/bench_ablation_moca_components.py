"""Ablation: which MoCA component buys what (DESIGN.md design choices).

Disables MoCA's pieces one at a time on a contention-heavy scenario:

- no-regulation: scheduler only (Algorithm 3), no bandwidth caps;
- fcfs-admission: regulation only (Algorithm 2), FCFS admission;
- full MoCA.

Paper narrative to hold: both components contribute; the full system
is at least as good as either ablation and better than the static
baseline.
"""

import pytest

from repro.baselines.static_partition import StaticPartitionPolicy
from repro.config import DEFAULT_SOC
from repro.core.policy import MoCAPolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.metrics import summarize
from repro.models.zoo import workload_set
from repro.sim.engine import run_simulation
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


class _NoRegulationMoCA(MoCAPolicy):
    name = "moca-no-regulation"

    def _regulate(self, sim):
        pass


class _FcfsMoCA(MoCAPolicy):
    name = "moca-fcfs-admission"

    def _admit(self, sim):
        self._lazy_init(sim)
        base = self.scheduler_config.tiles_per_task
        admitted = False
        while sim.ready and sim.free_tiles >= base:
            sim.start_job(sim.ready[0], base)
            admitted = True
        if admitted:
            self._epoch += 1


def _run(policy_factory, seeds=(1, 2)):
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    gen = WorkloadGenerator(soc, workload_set("C"), mem,
                            QosModel(soc, slack_factor=2.0))
    rates = []
    for seed in seeds:
        tasks = gen.generate(WorkloadConfig(
            num_tasks=80, qos_level=QosLevel.HARD, load_factor=0.7,
            seed=seed,
        ))
        result = run_simulation(soc, tasks, policy_factory(), mem=mem)
        rates.append(summarize(result.policy_name, result.results).sla_rate)
    return sum(rates) / len(rates)


def test_moca_component_ablation(benchmark):
    full = benchmark.pedantic(_run, args=(MoCAPolicy,), rounds=1,
                              iterations=1)
    no_reg = _run(_NoRegulationMoCA)
    fcfs = _run(_FcfsMoCA)
    static = _run(StaticPartitionPolicy)

    print()
    print("MoCA component ablation (Workload-C, QoS-H, SLA rate):")
    print(f"  static baseline:        {static:.3f}")
    print(f"  scheduler only (Alg 3): {no_reg:.3f}")
    print(f"  regulation only (Alg 2):{fcfs:.3f}")
    print(f"  full MoCA:              {full:.3f}")

    # Shape: the full system beats the static baseline.
    assert full > static
    # Shape: the full system is not worse than either single component
    # by a meaningful margin.
    assert full >= no_reg - 0.05
    assert full >= fcfs - 0.05
