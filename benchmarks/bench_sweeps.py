"""Benchmark the artifact-appendix configuration sweeps (§F).

Shapes to hold: MoCA beats static at every configuration; its
advantage grows when DRAM bandwidth is scarce and shrinks when the
channel is over-provisioned (regulation matters only under contention).
"""

import pytest

from repro.experiments.sweeps import (
    format_sweep,
    sweep_dram_bandwidth,
    sweep_l2_capacity,
    sweep_num_tiles,
)


def test_dram_bandwidth_sweep(benchmark):
    points = benchmark.pedantic(sweep_dram_bandwidth, rounds=1, iterations=1)
    print()
    print(format_sweep("DRAM bandwidth sweep (Workload-C, QoS-H):", points))

    # Shape: MoCA wins at the paper's 16 B/cycle configuration.
    assert points[1].advantage >= 1.0
    # Shape: MoCA's advantage is a contention phenomenon — it is
    # larger when bandwidth is scarce than when the channel is
    # over-provisioned (with 2x bandwidth there is little to regulate
    # and the FCFS static baseline can even edge ahead).
    assert points[0].advantage > points[-1].advantage
    # Shape: absolute satisfaction improves with more bandwidth.
    assert points[-1].moca_sla >= points[0].moca_sla


def test_l2_capacity_sweep(benchmark):
    points = benchmark.pedantic(sweep_l2_capacity, rounds=1, iterations=1)
    print()
    print(format_sweep("L2 capacity sweep (Workload-C, QoS-H):", points))
    assert all(p.advantage >= 0.95 for p in points)


def test_tile_count_sweep(benchmark):
    points = benchmark.pedantic(sweep_num_tiles, rounds=1, iterations=1)
    print()
    print(format_sweep("Tile count sweep (Workload-C, QoS-H):", points))
    # Shape: MoCA's advantage grows with the number of co-runners —
    # more tiles behind the same 16 B/cycle DRAM (the bandwidth wall)
    # means more contention for the runtime to regulate.
    advantages = [p.advantage for p in points]
    assert advantages == sorted(advantages)
    # Shape: MoCA wins at the paper's 8-tile configuration and above.
    assert all(p.advantage >= 1.0 for p in points[1:])
