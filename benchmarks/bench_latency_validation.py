"""Benchmark the Algorithm 1 validation (Section III-C's 10 % claim).

Paper claim to hold: latency predictions within 10 % of measured
runtimes across networks and layers.
"""

from repro.experiments.validation import (
    format_validation,
    run_validation,
    summarize_validation,
)


def test_latency_model_validation(benchmark):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    print()
    print(format_validation(rows))

    mean_err, max_err = summarize_validation(rows)
    assert mean_err < 0.10
    assert max_err < 0.10
    # Every network and every tile allocation was validated.
    assert len({r.network for r in rows}) == 7
    assert len({r.tiles for r in rows}) == 4
