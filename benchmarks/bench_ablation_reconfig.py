"""Ablation: reconfiguration cost (Section V-A).

The paper's argument: compute repartitioning costs ~1 M cycles of
thread migration, while MoCA's memory repartition costs 5-10 cycles —
so a policy that adapts through the memory path can reconfigure
frequently where a compute-fission policy cannot.

This bench runs Planaria with its real migration cost against a
hypothetical free-migration Planaria, and MoCA with its real 8-cycle
memory reconfig, quantifying how much of Planaria's SLA loss is the
migration overhead itself.
"""

import pytest

from repro.baselines.planaria import PlanariaPolicy
from repro.config import DEFAULT_SOC
from repro.core.policy import MoCAPolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.metrics import summarize
from repro.models.zoo import workload_set
from repro.sim.engine import run_simulation
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


class _FreeMigrationPlanaria(PlanariaPolicy):
    """Planaria with a hypothetical zero-cost thread migration."""

    name = "planaria-free"
    compute_reconfig_cycles = 0


def _run(policy_factory, seed=1):
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    gen = WorkloadGenerator(soc, workload_set("A"), mem,
                            QosModel(soc, slack_factor=2.0))
    tasks = gen.generate(WorkloadConfig(
        num_tasks=80, qos_level=QosLevel.HARD, load_factor=0.7, seed=seed,
    ))
    result = run_simulation(soc, tasks, policy_factory(), mem=mem)
    return summarize(result.policy_name, result.results), result


def test_reconfiguration_cost_ablation(benchmark):
    planaria, planaria_res = benchmark.pedantic(
        _run, args=(PlanariaPolicy,), rounds=1, iterations=1
    )
    free, _ = _run(_FreeMigrationPlanaria)
    moca, moca_res = _run(MoCAPolicy)

    stalls = sum(r.stall_cycles for r in planaria_res.results)
    reparts = sum(r.tile_repartitions for r in planaria_res.results)
    moca_mem_stalls = sum(
        r.stall_cycles
        for r in moca_res.results
        if not r.tile_repartitions
    )
    moca_reconfigs = sum(r.bw_reconfigs for r in moca_res.results)

    print()
    print("Reconfiguration-cost ablation (Workload-A, QoS-H):")
    print(f"  planaria (1M-cycle migrations): SLA {planaria.sla_rate:.3f}, "
          f"{reparts} repartitions, {stalls / 1e6:.0f}M stall cycles")
    print(f"  planaria (free migrations):     SLA {free.sla_rate:.3f}")
    print(f"  moca (8-cycle mem reconfigs):   SLA {moca.sla_rate:.3f}, "
          f"{moca_reconfigs} reconfigs, "
          f"{moca_mem_stalls:.0f} stall cycles total")

    # Shape: the migration cost is a real burden for Planaria.
    assert free.sla_rate >= planaria.sla_rate
    # Shape: Planaria actually pays on the order of 1M cycles per
    # repartition (overlapping stalls on the same job merge, so the
    # average sits slightly below the 1M charge).
    if reparts:
        assert stalls >= 0.6e6 * reparts
    # Shape: MoCA reconfigures often yet pays almost nothing —
    # 5-10 cycles per reconfiguration vs 1M per migration.
    if moca_reconfigs:
        assert moca_mem_stalls <= moca_reconfigs * 10
    # Shape: MoCA beats real Planaria on this scenario.
    assert moca.sla_rate > planaria.sla_rate
