"""Benchmark regenerating Figure 1: co-location latency increase.

Paper shape to hold: every workload slows by a meaningful factor at
x=4; AlexNet shows the largest *average* increase (its FC layers are
memory-bound); SqueezeNet shows the largest *worst-case* increase (its
short runtime can be fully overlapped by a co-runner's memory phase).
"""

import pytest

from repro.experiments.fig1_motivation import format_fig1, run_fig1

TRIALS = 120


@pytest.fixture(scope="module")
def fig1_rows():
    return run_fig1(trials=TRIALS, seed=0)


def test_fig1_motivation(benchmark, fig1_rows):
    rows = benchmark.pedantic(
        run_fig1, kwargs=dict(trials=TRIALS, seed=0), rounds=1, iterations=1
    )
    print()
    print(format_fig1(rows))

    by_net = {}
    for r in rows:
        by_net.setdefault(r.network, {})[r.degree] = r

    # Shape: x=1 is exactly isolated.
    for net, degrees in by_net.items():
        assert degrees[1].avg_increase == pytest.approx(1.0, abs=0.01)

    # Shape: meaningful degradation at full co-location.
    for net, degrees in by_net.items():
        assert degrees[4].avg_increase > 1.10, net

    # Shape: AlexNet is among the two worst averages at x=4 (paper:
    # ~2x, the worst; in our substrate SqueezeNet's short runs can pull
    # its average past AlexNet's — see EXPERIMENTS.md deviations).
    ranked = sorted(by_net, key=lambda n: -by_net[n][4].avg_increase)
    assert "alexnet" in ranked[:2]

    # Shape: SqueezeNet's worst case is the most extreme relative to
    # its average (paper: >3x worst case).
    sq = by_net["squeezenet"][4]
    assert sq.worst_increase > sq.avg_increase
    assert sq.worst_increase > 1.5
