"""Benchmark regenerating Table IV: tile area breakdown.

Paper claims to hold: MoCA's hardware is 0.02 % of the tile area, and
it grows only the memory interface (1.7 % of the tile) by a small
fraction.
"""

import pytest

from repro.experiments.table4_area import format_table4, run_table4


def test_table4_area(benchmark):
    model, headline = benchmark(run_table4)
    print()
    print(format_table4())

    assert headline["moca_pct_of_tile"] == pytest.approx(0.02, abs=0.005)
    assert headline["memory_interface_pct_of_tile"] == pytest.approx(
        1.7, abs=0.1
    )
    assert headline["moca_pct_of_memory_interface"] < 5.0
    # The MoCA engine is by far the smallest itemized component.
    areas = model.component_map
    assert areas["moca_hardware"] == min(areas.values())
